"""Unit tests for bases and residues (Definitions 3.3-3.5, Figure 4)."""

import numpy as np
import pytest

from repro.core.residue import (
    col_residues,
    compute_bases,
    mean_abs_residue,
    mean_squared_residue,
    residue_matrix,
    row_residues,
    submatrix_residue,
)
from repro.data.microarray import figure4_cluster, figure4_matrix

NAN = float("nan")


class TestFigure4:
    """The worked example of Section 3 must reproduce exactly."""

    def setup_method(self):
        self.matrix = figure4_matrix()
        self.cluster = figure4_cluster()
        self.sub = self.cluster.submatrix(self.matrix)

    def test_object_bases(self):
        bases = compute_bases(self.sub)
        # d_VPS8,J = 273, d_EFB1,J = 190, d_CYS3,J = 194
        assert bases.row.tolist() == [273.0, 190.0, 194.0]

    def test_attribute_bases(self):
        bases = compute_bases(self.sub)
        # d_I,CH1I = 347, d_I,CH1D = 66, d_I,CH2B = 244
        assert bases.col.tolist() == [347.0, 66.0, 244.0]

    def test_cluster_base(self):
        assert compute_bases(self.sub).grand == pytest.approx(219.0)

    def test_perfect_cluster_zero_residue(self):
        assert mean_abs_residue(self.sub) == pytest.approx(0.0, abs=1e-9)

    def test_entry_reconstruction(self):
        # d_ij = d_iJ + d_Ij - d_IJ holds for every entry (Section 3):
        # e.g. d_VPS8,CH1I = 273 + 347 - 219 = 401.
        bases = compute_bases(self.sub)
        expected = bases.row[:, None] + bases.col[None, :] - bases.grand
        assert np.allclose(self.sub, expected)

    def test_volume_is_nine(self):
        assert compute_bases(self.sub).volume == 9


class TestBases:
    def test_simple_means(self):
        sub = np.array([[1.0, 3.0], [5.0, 7.0]])
        bases = compute_bases(sub)
        assert bases.row.tolist() == [2.0, 6.0]
        assert bases.col.tolist() == [3.0, 5.0]
        assert bases.grand == pytest.approx(4.0)
        assert bases.volume == 4

    def test_missing_entries_excluded(self):
        sub = np.array([[1.0, NAN], [5.0, 7.0]])
        bases = compute_bases(sub)
        assert bases.row.tolist() == [1.0, 6.0]
        assert bases.col.tolist() == [3.0, 7.0]
        assert bases.volume == 3

    def test_fully_missing_row_base_zero(self):
        sub = np.array([[NAN, NAN], [5.0, 7.0]])
        bases = compute_bases(sub)
        assert bases.row[0] == 0.0
        assert bases.row_counts[0] == 0

    def test_all_missing_volume_zero(self):
        sub = np.full((2, 2), NAN)
        bases = compute_bases(sub)
        assert bases.volume == 0
        assert bases.grand == 0.0


class TestResidueMatrix:
    def test_perfect_additive_pattern_zero(self):
        rows = np.array([0.0, 10.0, -5.0])
        cols = np.array([1.0, 2.0, 3.0, 4.0])
        sub = 100.0 + rows[:, None] + cols[None, :]
        assert np.allclose(residue_matrix(sub), 0.0)

    def test_missing_entries_get_zero_residue(self):
        sub = np.array([[1.0, NAN], [5.0, 7.0]])
        res = residue_matrix(sub)
        assert res[0, 1] == 0.0

    def test_residues_sum_to_zero_rows_and_cols(self):
        # Algebraic identity: residues sum to ~0 along each fully
        # specified axis because the bases are means.
        rng = np.random.default_rng(0)
        sub = rng.normal(size=(5, 4))
        res = residue_matrix(sub)
        assert np.allclose(res.sum(axis=0), 0.0, atol=1e-9)
        assert np.allclose(res.sum(axis=1), 0.0, atol=1e-9)


class TestMeanResidues:
    def test_known_2x2(self):
        # For a 2x2 every residue is |d11 - d12 - d21 + d22| / 4.
        sub = np.array([[1.0, 2.0], [3.0, 8.0]])
        expected = abs(1.0 - 2.0 - 3.0 + 8.0) / 4.0
        assert mean_abs_residue(sub) == pytest.approx(expected)

    def test_empty_is_zero(self):
        assert mean_abs_residue(np.empty((0, 0))) == 0.0
        assert mean_squared_residue(np.empty((0, 3))) == 0.0

    def test_all_missing_is_zero(self):
        assert mean_abs_residue(np.full((3, 3), NAN)) == 0.0

    def test_squared_vs_abs_relationship(self):
        rng = np.random.default_rng(1)
        sub = rng.normal(size=(6, 5))
        res = residue_matrix(sub)
        assert mean_squared_residue(sub) == pytest.approx(
            float(np.square(res).mean())
        )
        assert mean_abs_residue(sub) == pytest.approx(float(np.abs(res).mean()))

    def test_shift_invariance(self):
        # Adding a constant to any row or column leaves residues intact --
        # the defining property of shifting coherence.
        rng = np.random.default_rng(2)
        sub = rng.normal(size=(5, 4))
        base = mean_abs_residue(sub)
        shifted = sub + rng.normal(size=(5, 1)) + rng.normal(size=(1, 4))
        assert mean_abs_residue(shifted) == pytest.approx(base)

    def test_scale_covariance(self):
        rng = np.random.default_rng(3)
        sub = rng.normal(size=(4, 4))
        assert mean_abs_residue(3.0 * sub) == pytest.approx(
            3.0 * mean_abs_residue(sub)
        )

    def test_submatrix_residue_indices(self):
        values = np.arange(30, dtype=float).reshape(5, 6)
        # Any submatrix of a perfect additive grid has zero residue.
        assert submatrix_residue(values, [0, 2, 4], [1, 3]) == pytest.approx(0.0)

    def test_submatrix_residue_empty_selection(self):
        values = np.ones((3, 3))
        assert submatrix_residue(values, [], [0]) == 0.0


class TestLineResidues:
    def test_row_residues_perfect(self):
        values = np.arange(12, dtype=float).reshape(3, 4)
        assert np.allclose(row_residues(values), 0.0)

    def test_col_residues_match_manual(self):
        rng = np.random.default_rng(4)
        sub = rng.normal(size=(4, 3))
        res = np.abs(residue_matrix(sub))
        assert np.allclose(col_residues(sub), res.mean(axis=0))

    def test_missing_line_zero(self):
        sub = np.array([[NAN, NAN], [1.0, 2.0], [3.0, 1.0]])
        assert row_residues(sub)[0] == 0.0
