"""White-box tests for FLOC's internal machinery.

The public behaviour is covered by test_floc.py; these pin down the
pieces that are easy to break silently: the r-residue gain table, the
score function, alpha seed trimming, dead-slot reseeding, and the
incremental fast-gain caches.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constraints import Constraints
from repro.core.floc import (
    _State,
    _gain,
    _reseed_dead_slots,
    _score,
    _trim_seed_to_alpha,
)
from repro.core.seeding import bernoulli_seeds

NAN = float("nan")


class TestGainTable:
    """The r-residue gain classes must rank exactly as designed."""

    TARGET = 5.0

    def test_literal_mode_is_residue_reduction(self):
        assert _gain(10.0, 100, 8.0, 110, None) == pytest.approx(2.0)
        assert _gain(10.0, 100, 12.0, 90, None) == pytest.approx(-2.0)

    def test_crossing_into_feasibility_ranks_highest(self):
        crossing = _gain(8.0, 100, 4.0, 90, self.TARGET, 1.0, False)
        growth = _gain(4.0, 100, 4.5, 120, self.TARGET, 2.0, True)
        cleanup = _gain(20.0, 100, 15.0, 90, self.TARGET, 10.0, False)
        assert crossing > growth > 0
        assert crossing > cleanup

    def test_feasible_growth_beats_feasible_shrink(self):
        growth = _gain(4.0, 100, 4.5, 120, self.TARGET, 2.0, True)
        shrink = _gain(4.0, 100, 3.5, 80, self.TARGET, 2.0, False)
        assert growth > 1.0
        assert shrink < 0.0

    def test_unfitting_addition_negative(self):
        # Adding a junk line that dilutes the mean below target must NOT
        # rank as growth.
        diluting = _gain(4.0, 1000, 4.4, 1010, self.TARGET, 50.0, True)
        assert diluting < 0.0

    def test_unfitting_line_eviction_is_cleanup(self):
        eviction = _gain(4.0, 100, 3.0, 90, self.TARGET, 50.0, False)
        assert eviction > 1.0

    def test_infeasible_progress_positive(self):
        assert _gain(20.0, 100, 18.0, 90, self.TARGET, 1.0, False) > 0.0
        assert _gain(20.0, 100, 22.0, 110, self.TARGET, 1.0, True) < 0.0


class TestScore:
    def make_state(self, residues, volumes):
        values = np.ones((10, 10))
        seeds = bernoulli_seeds(10, 10, len(residues), 0.5,
                                np.random.default_rng(0))
        state = _State(values, ~np.isnan(values), seeds, fast=False)
        state.residues[:] = residues
        state.volumes[:] = volumes
        return state

    def test_literal_mode_mean_residue(self):
        state = self.make_state([2.0, 4.0], [10, 20])
        assert _score(state, None) == pytest.approx(3.0)

    def test_target_mode_feasible_rewards_volume(self):
        state = self.make_state([1.0, 2.0], [10, 20])
        assert _score(state, 5.0) == pytest.approx(-30.0)

    def test_target_mode_excess_dominates(self):
        feasible = self.make_state([1.0, 2.0], [10, 20])
        infeasible = self.make_state([1.0, 6.0], [10, 2000])
        assert _score(infeasible, 5.0) > _score(feasible, 5.0)


class TestTrimSeedToAlpha:
    def test_valid_seed_untouched(self):
        mask = np.ones((6, 6), dtype=bool)
        rows = np.array([True] * 4 + [False] * 2)
        cols = np.array([True] * 4 + [False] * 2)
        trimmed_rows, trimmed_cols = _trim_seed_to_alpha(
            rows, cols, mask, 0.6, 2, 2
        )
        assert (trimmed_rows == rows).all()
        assert (trimmed_cols == cols).all()

    def test_sparse_row_trimmed(self):
        mask = np.ones((5, 5), dtype=bool)
        mask[0, :] = False  # row 0 fully missing
        rows = np.ones(5, dtype=bool)
        cols = np.ones(5, dtype=bool)
        trimmed_rows, __ = _trim_seed_to_alpha(rows, cols, mask, 0.6, 2, 2)
        assert not trimmed_rows[0]

    def test_input_not_mutated(self):
        mask = np.ones((5, 5), dtype=bool)
        mask[0, :] = False
        rows = np.ones(5, dtype=bool)
        cols = np.ones(5, dtype=bool)
        _trim_seed_to_alpha(rows, cols, mask, 0.6, 2, 2)
        assert rows.all()

    def test_floor_stops_trimming(self):
        mask = np.zeros((4, 4), dtype=bool)  # everything missing
        rows = np.array([True, True, False, False])
        cols = np.array([True, True, False, False])
        trimmed_rows, trimmed_cols = _trim_seed_to_alpha(
            rows, cols, mask, 0.9, 2, 2
        )
        # Cannot trim below the structural floor even if still invalid.
        assert trimmed_rows.sum() == 2
        assert trimmed_cols.sum() == 2


class TestReseedDeadSlots:
    def make_state(self, rng_seed=0, k=3):
        rng = np.random.default_rng(rng_seed)
        values = rng.uniform(0, 100, size=(40, 20))
        seeds = bernoulli_seeds(40, 20, k, 0.3, rng)
        return _State(values, ~np.isnan(values), seeds, fast=True), rng

    def test_floor_cluster_reseeded(self):
        state, rng = self.make_state()
        # Collapse cluster 0 to the floor.
        state.row_member[0] = False
        state.row_member[0, :2] = True
        state.col_member[0] = False
        state.col_member[0, :2] = True
        state.refresh_cluster(0)
        changed = _reseed_dead_slots(state, 0.3, Constraints(), rng, None)
        assert changed
        assert state.row_member[0].sum() > 3

    def test_infeasible_cluster_reseeded_in_target_mode(self):
        state, rng = self.make_state(rng_seed=1)
        before = state.row_member.copy()
        changed = _reseed_dead_slots(
            state, 0.3, Constraints(), rng, residue_target=0.001
        )
        # Random clusters on uniform data are all far above the target.
        assert changed
        assert not (state.row_member == before).all()

    def test_duplicate_locked_clusters_deduplicated(self):
        state, rng = self.make_state(rng_seed=2, k=2)
        # Make both clusters identical, large, and trivially feasible.
        member_rows = np.zeros(40, dtype=bool)
        member_rows[:10] = True
        member_cols = np.zeros(20, dtype=bool)
        member_cols[:8] = True
        for c in (0, 1):
            state.row_member[c] = member_rows
            state.col_member[c] = member_cols
            state.refresh_cluster(c)
        state.residues[:] = 0.0  # pretend both are coherent
        changed = _reseed_dead_slots(
            state, 0.3, Constraints(), rng, residue_target=1000.0
        )
        assert changed
        # Exactly one of the twins must have been reseeded.
        same0 = (state.row_member[0] == member_rows).all()
        same1 = (state.row_member[1] == member_rows).all()
        assert same0 != same1

    def test_healthy_state_untouched(self):
        state, rng = self.make_state(rng_seed=3)
        before_rows = state.row_member.copy()
        changed = _reseed_dead_slots(
            state, 0.3, Constraints(), rng, residue_target=None
        )
        # Literal mode: no residue-based death; clusters are above floor.
        assert not changed
        assert (state.row_member == before_rows).all()


class TestFastCaches:
    """The incremental caches must agree with a full refresh after any
    sequence of toggles."""

    def test_cache_consistency_random_walk(self):
        rng = np.random.default_rng(4)
        values = rng.normal(size=(20, 12))
        values[rng.random((20, 12)) < 0.15] = np.nan
        mask = ~np.isnan(values)
        seeds = bernoulli_seeds(20, 12, 2, 0.4, rng)
        state = _State(values, mask, seeds, fast=True)
        for step in range(60):
            kind = "row" if rng.random() < 0.5 else "col"
            index = int(rng.integers(0, 20 if kind == "row" else 12))
            c = int(rng.integers(0, 2))
            state.toggle(kind, index, c)
            # Compare incremental caches against a from-scratch rebuild.
            rows = np.flatnonzero(state.row_member[c])
            cols = np.flatnonzero(state.col_member[c])
            filled = np.where(mask, values, 0.0)
            expected_col_sums = filled[rows, :].sum(axis=0)
            expected_row_sums = filled[:, cols].sum(axis=1)
            assert np.allclose(state.col_sums[c], expected_col_sums)
            assert np.allclose(state.row_sums[c], expected_row_sums)
            assert (
                state.col_counts[c] == mask[rows, :].sum(axis=0)
            ).all()
            assert (
                state.row_counts[c] == mask[:, cols].sum(axis=1)
            ).all()

    def test_fast_candidate_close_to_exact_for_additions(self):
        rng = np.random.default_rng(5)
        values = rng.normal(size=(30, 10))
        seeds = bernoulli_seeds(30, 10, 1, 0.4, rng)
        state = _State(values, ~np.isnan(values), seeds, fast=True)
        outside = np.flatnonzero(~state.row_member[0])
        for index in outside[:5]:
            fast_res, fast_vol = state.fast_candidate("row", int(index), 0)
            exact_res, exact_vol = state.exact_candidate("row", int(index), 0)
            assert fast_vol == exact_vol
            # Frozen-bases estimate: same ballpark, not exact.
            assert fast_res == pytest.approx(exact_res, rel=0.5, abs=0.5)

    def test_batch_candidates_match_per_cluster(self):
        rng = np.random.default_rng(7)
        values = rng.normal(size=(25, 14))
        values[rng.random((25, 14)) < 0.2] = np.nan
        seeds = bernoulli_seeds(25, 14, 4, 0.35, rng)
        state = _State(values, ~np.isnan(values), seeds, fast=True)
        # Include degenerate clusters: one at the floor, one tiny.
        state.row_member[3] = False
        state.row_member[3, :2] = True
        state.col_member[3] = False
        state.col_member[3, :2] = True
        state.refresh_cluster(3)
        for kind, limit in (("row", 25), ("col", 14)):
            for index in range(limit):
                batch = state.candidate_parts_batch(kind, index)
                for c in range(4):
                    single = state._candidate_parts(kind, index, c)
                    assert float(batch[0][c]) == pytest.approx(
                        single[0], rel=1e-12, abs=1e-12
                    ), (kind, index, c)
                    assert int(batch[1][c]) == single[1]
                    assert float(batch[2][c]) == pytest.approx(
                        single[2], rel=1e-12, abs=1e-12
                    )

    def test_snapshot_restore_round_trip(self):
        rng = np.random.default_rng(6)
        values = rng.normal(size=(15, 8))
        seeds = bernoulli_seeds(15, 8, 2, 0.4, rng)
        state = _State(values, ~np.isnan(values), seeds, fast=True)
        snapshot = state.snapshot()
        for __ in range(10):
            state.toggle("row", int(rng.integers(0, 15)), int(rng.integers(0, 2)))
        state.restore(snapshot)
        assert (state.row_member == snapshot["row_member"]).all()
        assert np.allclose(state.row_sums, snapshot["row_sums"])
        assert np.allclose(state.residues, snapshot["residues"])


class TestSnapshotRestoreProperty:
    """Snapshot/restore must be a *bit-exact* undo, not an approximate one.

    Twin construction: both states apply the same prefix ``t1``; one then
    detours through ``t2`` and restores the snapshot.  Every piece of
    state -- membership, residues, occupancy counts, fast caches -- and
    every subsequent toggle-gain evaluation must be bitwise identical to
    the twin that never detoured.  (The checkpoint/resume parity of
    ``repro.runtime`` rests on this class of exact-undo invariant.)
    """

    N_ROWS, N_COLS, K = 12, 7, 3

    _toggle_ops = st.lists(
        st.tuples(
            st.booleans(),
            st.integers(0, 10 ** 6),
            st.integers(0, 10 ** 6),
        ),
        max_size=12,
    )

    def _make_twins(self, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=(self.N_ROWS, self.N_COLS))
        values[rng.random(size=values.shape) < 0.15] = NAN
        mask = ~np.isnan(values)
        seeds = bernoulli_seeds(
            self.N_ROWS, self.N_COLS, self.K, 0.4,
            np.random.default_rng(seed + 1),
        )
        return (
            _State(values, mask, seeds, fast=True),
            _State(values, mask, seeds, fast=True),
        )

    def _apply(self, state, ops):
        for is_row, index, cluster in ops:
            kind = "row" if is_row else "col"
            limit = self.N_ROWS if is_row else self.N_COLS
            state.toggle(kind, index % limit, cluster % self.K)

    @staticmethod
    def _assert_bit_identical(a, b, label):
        a, b = np.asarray(a), np.asarray(b)
        if a.dtype.kind == "f":
            assert np.array_equal(a, b, equal_nan=True), label
        else:
            assert np.array_equal(a, b), label

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2 ** 16), t1=_toggle_ops,
           t2=_toggle_ops)
    def test_round_trip_is_bit_exact(self, seed, t1, t2):
        state, twin = self._make_twins(seed)
        self._apply(state, t1)
        self._apply(twin, t1)
        snapshot = state.snapshot()
        self._apply(state, t2)
        state.restore(snapshot)
        for attr in ("row_member", "col_member", "residues", "volumes",
                     "row_sums", "row_counts", "col_sums", "col_counts"):
            self._assert_bit_identical(
                getattr(state, attr), getattr(twin, attr), attr
            )
        for kind, limit in (("row", self.N_ROWS), ("col", self.N_COLS)):
            for index in range(limit):
                parts_a = state.candidate_parts_batch(kind, index)
                parts_b = twin.candidate_parts_batch(kind, index)
                for part_a, part_b in zip(parts_a, parts_b):
                    self._assert_bit_identical(
                        part_a, part_b, (kind, index)
                    )
