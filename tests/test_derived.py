"""Unit tests for the Section-4.4 alternative algorithm (Figure 7)."""

import numpy as np
import pytest

from repro.core.matrix import DataMatrix
from repro.data.microarray import figure4_matrix
from repro.subspace.derived import (
    AlternativeResult,
    alternative_delta_clusters,
    attribute_graph,
    derived_matrix,
    subspace_cluster_to_delta,
)
from repro.subspace.clique import SubspaceCluster

NAN = float("nan")


class TestDerivedMatrix:
    def test_dimensionality_quadratic(self):
        matrix = DataMatrix(np.ones((3, 5)))
        derived, pairs = derived_matrix(matrix)
        assert derived.n_cols == 10  # 5 * 4 / 2
        assert len(pairs) == 10
        assert pairs[0] == (0, 1)
        assert pairs[-1] == (3, 4)

    def test_difference_values(self):
        matrix = DataMatrix([[5.0, 2.0, 1.0]])
        derived, pairs = derived_matrix(matrix)
        expected = {(0, 1): 3.0, (0, 2): 4.0, (1, 2): 1.0}
        for j, pair in enumerate(pairs):
            assert derived.values[0, j] == pytest.approx(expected[pair])

    def test_missing_propagates(self):
        matrix = DataMatrix([[1.0, NAN, 3.0]])
        derived, pairs = derived_matrix(matrix)
        by_pair = dict(zip(pairs, derived.values[0]))
        assert np.isnan(by_pair[(0, 1)])
        assert np.isnan(by_pair[(1, 2)])
        assert by_pair[(0, 2)] == pytest.approx(-2.0)

    def test_figure7_derived_values(self):
        """Spot-check Figure 7(a): derived column 1I1D for VPS8 is 281,
        1I2B for CYS3 is 103."""
        matrix = figure4_matrix()
        derived, pairs = derived_matrix(matrix)
        col_1i1d = pairs.index((0, 2))  # CH1I - CH1D
        col_1i2b = pairs.index((0, 4))  # CH1I - CH2B
        vps8, cys3 = 1, 7
        assert derived.values[vps8, col_1i1d] == pytest.approx(281.0)
        assert derived.values[cys3, col_1i2b] == pytest.approx(103.0)

    def test_labels_derived(self):
        matrix = DataMatrix([[1.0, 2.0]], col_labels=["A", "B"])
        derived, __ = derived_matrix(matrix)
        assert derived.col_labels == ("A-B",)

    def test_needs_two_columns(self):
        with pytest.raises(ValueError, match="2 attributes"):
            derived_matrix(DataMatrix([[1.0], [2.0]]))


class TestAttributeGraph:
    def test_edges_from_pairs(self):
        pairs = [(0, 1), (0, 2), (1, 2), (2, 3)]
        graph = attribute_graph((0, 1, 2), pairs)
        assert graph.has_edge(0, 1)
        assert graph.has_edge(0, 2)
        assert graph.has_edge(1, 2)
        assert not graph.has_edge(2, 3)


class TestSubspaceToDelta:
    def test_clique_maps_to_cluster(self):
        pairs = [(0, 1), (0, 2), (1, 2)]
        sc = SubspaceCluster(dims=(0, 1, 2), points=frozenset({4, 7, 9}), units=())
        clusters = subspace_cluster_to_delta(sc, pairs, min_rows=2, min_cols=3)
        assert len(clusters) == 1
        assert clusters[0].rows == (4, 7, 9)
        assert clusters[0].cols == (0, 1, 2)

    def test_too_few_rows_dropped(self):
        pairs = [(0, 1)]
        sc = SubspaceCluster(dims=(0,), points=frozenset({1}), units=())
        assert subspace_cluster_to_delta(sc, pairs, min_rows=2) == []

    def test_min_cols_filters_small_cliques(self):
        pairs = [(0, 1), (2, 3)]
        sc = SubspaceCluster(dims=(0, 1), points=frozenset({1, 2}), units=())
        clusters = subspace_cluster_to_delta(sc, pairs, min_rows=2, min_cols=3)
        assert clusters == []


class TestEndToEnd:
    def test_recovers_planted_shifting_cluster(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0.0, 500.0, size=(60, 6))
        # Plant a shifting-coherent cluster: rows 0-19 on columns 0-2.
        rows = np.arange(20)
        row_offsets = rng.uniform(-40, 40, size=20)
        col_offsets = np.array([0.0, 30.0, -20.0])
        values[np.ix_(rows, [0, 1, 2])] = (
            200.0 + row_offsets[:, None] + col_offsets[None, :]
        )
        result = alternative_delta_clusters(
            values, xi=20, tau=0.15, min_rows=5, min_cols=3, max_residue=15.0
        )
        assert isinstance(result, AlternativeResult)
        assert result.n_derived_attributes == 15
        matches = [
            c for c in result.clusters
            if set(c.cols) == {0, 1, 2} and len(set(c.rows) & set(range(20))) >= 15
        ]
        assert matches, "expected the planted delta-cluster to be recovered"

    def test_residue_verification_filters(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(0.0, 100.0, size=(40, 5))
        strict = alternative_delta_clusters(
            values, xi=5, tau=0.05, min_rows=3, min_cols=3, max_residue=0.01
        )
        for cluster in strict.clusters:
            assert cluster.residue(DataMatrix(values)) <= 0.01

    def test_timings_populated(self):
        rng = np.random.default_rng(2)
        values = rng.uniform(0, 10, size=(30, 4))
        result = alternative_delta_clusters(values, xi=4, tau=0.1)
        assert result.elapsed_seconds >= result.clique_seconds
        assert result.derive_seconds >= 0.0
        assert result.map_seconds >= 0.0
