"""Unit tests for prediction/imputation from delta-clusters."""

import numpy as np
import pytest

from repro.core.cluster import DeltaCluster
from repro.core.clustering import Clustering
from repro.core.matrix import DataMatrix
from repro.core.predict import impute, predict_entry, prediction_error

NAN = float("nan")


def perfect_matrix(n=6, m=5, rng_seed=0):
    """Whole matrix follows the additive model: every prediction exact."""
    rng = np.random.default_rng(rng_seed)
    rows = rng.uniform(-50, 50, size=n)
    cols = rng.uniform(-50, 50, size=m)
    return DataMatrix(100.0 + rows[:, None] + cols[None, :])


class TestPredictEntry:
    def test_exact_on_perfect_cluster(self):
        matrix = perfect_matrix()
        cluster = DeltaCluster(range(6), range(5))
        for row, col in ((0, 0), (3, 2), (5, 4)):
            predicted = predict_entry(matrix, cluster, row, col)
            assert predicted == pytest.approx(matrix.values[row, col])

    def test_paper_intro_example(self):
        """Section 1: viewers (1,2,3,5), (2,3,4,6), (3,4,5,7); the first
        two rate a new movie 2 and 3 -> the third is projected to 4."""
        ratings = DataMatrix([
            [1.0, 2.0, 3.0, 5.0, 2.0],
            [2.0, 3.0, 4.0, 6.0, 3.0],
            [3.0, 4.0, 5.0, 7.0, NAN],
        ])
        cluster = DeltaCluster(rows=(0, 1, 2), cols=(0, 1, 2, 3, 4))
        projected = predict_entry(ratings, cluster, 2, 4)
        assert projected == pytest.approx(4.0)

    def test_holds_out_target_by_default(self):
        matrix = perfect_matrix()
        values = matrix.values.copy()
        values[2, 2] = 999.0  # corrupt one cell
        corrupted = DataMatrix(values)
        cluster = DeltaCluster(range(6), range(5))
        # With hold-out, the corruption cannot echo into its own prediction.
        held_out = predict_entry(corrupted, cluster, 2, 2)
        assert abs(held_out - matrix.values[2, 2]) < abs(999.0 - matrix.values[2, 2])

    def test_include_target_echoes(self):
        matrix = perfect_matrix()
        cluster = DeltaCluster(range(6), range(5))
        with_target = predict_entry(matrix, cluster, 1, 1, exclude_target=False)
        assert with_target == pytest.approx(matrix.values[1, 1])

    def test_uncovered_cell_rejected(self):
        matrix = perfect_matrix()
        cluster = DeltaCluster((0, 1), (0, 1))
        with pytest.raises(ValueError, match="not covered"):
            predict_entry(matrix, cluster, 5, 4)

    def test_no_data_rejected(self):
        matrix = DataMatrix([[NAN, NAN], [NAN, 1.0]])
        cluster = DeltaCluster((0, 1), (0, 1))
        with pytest.raises(ValueError, match="no specified data"):
            predict_entry(matrix, cluster, 0, 0)


class TestImpute:
    def test_single_hole_filled_exactly(self):
        matrix = perfect_matrix()
        values = matrix.values.copy()
        values[1, 2] = np.nan
        sparse = DataMatrix(values)
        clustering = Clustering(sparse, [DeltaCluster(range(6), range(5))])
        filled = impute(sparse, clustering)
        assert filled.n_specified == 30
        assert filled.values[1, 2] == pytest.approx(matrix.values[1, 2])

    def test_multiple_holes_filled_approximately(self):
        # A second hole leaves the cross block incomplete, so the
        # estimator carries an O(spread / block-size) bias.
        matrix = perfect_matrix()
        values = matrix.values.copy()
        values[1, 2] = np.nan
        values[4, 0] = np.nan
        sparse = DataMatrix(values)
        clustering = Clustering(sparse, [DeltaCluster(range(6), range(5))])
        filled = impute(sparse, clustering)
        assert filled.n_specified == 30
        assert filled.values[1, 2] == pytest.approx(
            matrix.values[1, 2], abs=5.0
        )
        assert filled.values[4, 0] == pytest.approx(
            matrix.values[4, 0], abs=5.0
        )

    def test_uncovered_stays_missing(self):
        matrix = perfect_matrix()
        values = matrix.values.copy()
        values[5, 4] = np.nan
        sparse = DataMatrix(values)
        clustering = Clustering(sparse, [DeltaCluster((0, 1), (0, 1))])
        filled = impute(sparse, clustering)
        assert np.isnan(filled.values[5, 4])

    def test_clip(self):
        values = np.full((3, 3), 9.0)
        values[0, 0] = np.nan
        values[1, :] = 1.0
        sparse = DataMatrix(values)
        clustering = Clustering(sparse, [DeltaCluster(range(3), range(3))])
        filled = impute(sparse, clustering, clip=(1.0, 10.0))
        assert 1.0 <= filled.values[0, 0] <= 10.0

    def test_clip_validated(self):
        matrix = perfect_matrix()
        clustering = Clustering(matrix, [])
        with pytest.raises(ValueError, match="clip"):
            impute(matrix, clustering, clip=(5.0, 1.0))

    def test_original_untouched(self):
        matrix = perfect_matrix()
        values = matrix.values.copy()
        values[0, 0] = np.nan
        sparse = DataMatrix(values)
        clustering = Clustering(sparse, [DeltaCluster(range(6), range(5))])
        impute(sparse, clustering)
        assert np.isnan(sparse.values[0, 0])

    def test_weighted_average_across_clusters(self):
        matrix = perfect_matrix()
        values = matrix.values.copy()
        values[2, 2] = np.nan
        sparse = DataMatrix(values)
        clustering = Clustering(sparse, [
            DeltaCluster(range(6), range(5)),
            DeltaCluster(range(4), range(4)),
        ])
        filled = impute(sparse, clustering)
        assert filled.values[2, 2] == pytest.approx(matrix.values[2, 2])


class TestPredictionError:
    def test_near_zero_on_perfect_cluster(self):
        matrix = perfect_matrix()
        cluster = DeltaCluster(range(6), range(5))
        assert prediction_error(matrix, cluster) == pytest.approx(0.0, abs=1e-9)

    def test_large_on_junk_cluster(self):
        rng = np.random.default_rng(1)
        matrix = DataMatrix(rng.uniform(0, 100, size=(10, 8)))
        cluster = DeltaCluster(range(10), range(8))
        assert prediction_error(matrix, cluster, rng=rng) > 5.0

    def test_sampling_cap(self):
        matrix = perfect_matrix(20, 15, rng_seed=2)
        cluster = DeltaCluster(range(20), range(15))
        error = prediction_error(
            matrix, cluster, rng=np.random.default_rng(0), max_cells=10
        )
        assert error == pytest.approx(0.0, abs=1e-9)

    def test_explicit_sample(self):
        matrix = perfect_matrix()
        cluster = DeltaCluster(range(6), range(5))
        error = prediction_error(matrix, cluster, sample=[(0, 0), (1, 1)])
        assert error == pytest.approx(0.0, abs=1e-9)

    def test_empty_cluster_rejected(self):
        matrix = perfect_matrix()
        with pytest.raises(ValueError, match="empty"):
            prediction_error(matrix, DeltaCluster((), ()))

    def test_default_sampling_is_deterministic(self):
        # Regression: with rng=None the >max_cells subsample used to be
        # drawn from OS entropy, so two identical calls could disagree.
        rng = np.random.default_rng(7)
        matrix = DataMatrix(rng.uniform(0, 100, size=(25, 20)))
        cluster = DeltaCluster(range(25), range(20))
        first = prediction_error(matrix, cluster, max_cells=50)
        second = prediction_error(matrix, cluster, max_cells=50)
        assert first == second

    def test_integer_seed_accepted(self):
        # rng now goes through resolve_rng, so a plain int seed works.
        matrix = perfect_matrix(20, 15, rng_seed=2)
        cluster = DeltaCluster(range(20), range(15))
        a = prediction_error(matrix, cluster, rng=3, max_cells=10)
        b = prediction_error(matrix, cluster, rng=3, max_cells=10)
        assert a == b
