"""Unit tests for the Cheng & Church biclustering baseline."""

import numpy as np
import pytest

from repro.baselines.cheng_church import (
    ChengChurchResult,
    col_msr_contributions,
    fill_missing_with_random,
    find_bicluster,
    find_biclusters,
    msr,
    multiple_node_deletion,
    node_addition,
    row_msr_contributions,
    single_node_deletion,
)
from repro.core.matrix import DataMatrix
from repro.data.synthetic import generate_embedded

NAN = float("nan")


def perfect_block(rows=4, cols=3, base=10.0):
    r = np.arange(rows, dtype=float)[:, None]
    c = np.arange(cols, dtype=float)[None, :] * 2.0
    return base + r + c


class TestMsr:
    def test_perfect_pattern_zero(self):
        assert msr(perfect_block()) == pytest.approx(0.0, abs=1e-12)

    def test_known_2x2(self):
        sub = np.array([[1.0, 2.0], [3.0, 8.0]])
        # Every squared residue is ((1-2-3+8)/4)^2 = 1.0.
        assert msr(sub) == pytest.approx(1.0)

    def test_count_aware_with_missing(self):
        sub = np.array([[1.0, NAN], [3.0, 4.0]])
        assert msr(sub) >= 0.0

    def test_contributions_sum_consistency(self):
        rng = np.random.default_rng(0)
        sub = rng.normal(size=(5, 4))
        d = row_msr_contributions(sub)
        e = col_msr_contributions(sub)
        h = msr(sub)
        assert np.mean(d) == pytest.approx(h)
        assert np.mean(e) == pytest.approx(h)


class TestSingleNodeDeletion:
    def test_reaches_delta(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(0, 100, size=(20, 10))
        rows, cols = single_node_deletion(
            values, np.arange(20), np.arange(10), delta=50.0
        )
        assert msr(values[np.ix_(rows, cols)]) <= 50.0

    def test_keeps_perfect_block_intact(self):
        values = perfect_block(6, 5)
        rows, cols = single_node_deletion(
            values, np.arange(6), np.arange(5), delta=0.5
        )
        assert rows.size == 6
        assert cols.size == 5

    def test_removes_outlier_row(self):
        values = perfect_block(6, 5)
        values[3] = [999.0, -50.0, 123.0, 7.0, 1000.0]
        rows, cols = single_node_deletion(
            values, np.arange(6), np.arange(5), delta=1.0
        )
        assert 3 not in rows

    def test_never_collapses_below_two(self):
        rng = np.random.default_rng(2)
        values = rng.uniform(0, 1000, size=(6, 6))
        rows, cols = single_node_deletion(
            values, np.arange(6), np.arange(6), delta=0.0
        )
        assert rows.size >= 1
        assert cols.size >= 1


class TestMultipleNodeDeletion:
    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            multiple_node_deletion(
                np.ones((4, 4)), np.arange(4), np.arange(4), 1.0, threshold=0.9
            )

    def test_batch_removes_bad_rows(self):
        rng = np.random.default_rng(3)
        values = perfect_block(150, 12)
        noisy = rng.choice(150, size=30, replace=False)
        values[noisy] += rng.uniform(-500, 500, size=(30, 12))
        rows, cols = multiple_node_deletion(
            values, np.arange(150), np.arange(12), delta=5.0,
            min_rows_for_batch=50, min_cols_for_batch=50,
        )
        # The batch phase alone need not reach delta, but it must strip
        # most of the corrupted rows.
        assert len(set(noisy) & set(rows)) < 10

    def test_small_matrix_left_for_single_deletion(self):
        rng = np.random.default_rng(4)
        values = rng.uniform(0, 100, size=(10, 10))
        rows, cols = multiple_node_deletion(
            values, np.arange(10), np.arange(10), delta=0.1,
            min_rows_for_batch=100, min_cols_for_batch=100,
        )
        # Both axes below the batch threshold: nothing happens.
        assert rows.size == 10
        assert cols.size == 10


class TestNodeAddition:
    def test_grows_back_perfect_lines(self):
        values = perfect_block(8, 6)
        rows, cols = node_addition(
            values, np.arange(4), np.arange(3)
        )
        assert rows.size == 8
        assert cols.size == 6

    def test_does_not_add_junk(self):
        values = perfect_block(8, 6)
        values[7] = np.random.default_rng(5).uniform(-1000, 1000, 6)
        rows, cols = node_addition(values, np.arange(4), np.arange(6))
        assert 7 not in rows

    def test_inverted_rows_added_when_enabled(self):
        values = perfect_block(6, 5, base=0.0)
        # Row 5 is a mirror image (co-regulated with opposite sign).
        values[5] = -values[0]
        rows_without, __ = node_addition(values, np.arange(4), np.arange(5))
        rows_with, __ = node_addition(
            values, np.arange(4), np.arange(5), include_inverted_rows=True
        )
        assert 5 not in rows_without
        assert 5 in rows_with


class TestFindBiclusters:
    def test_finds_planted_block(self):
        dataset = generate_embedded(
            60, 20, 1, cluster_shape=(15, 10), noise=1.0, rng=6
        )
        result = find_biclusters(
            dataset.matrix, 1, delta=9.0, rng=7,
            min_rows_for_batch=30, min_cols_for_batch=30,
        )
        (bic,) = result.biclusters
        planted = dataset.embedded[0]
        shared = len(set(bic.rows) & set(planted.rows))
        assert shared >= 10
        assert bic.score <= 9.0

    def test_masking_changes_matrix_between_rounds(self):
        rng = np.random.default_rng(8)
        matrix = DataMatrix(rng.uniform(0, 10, size=(20, 10)))
        result = find_biclusters(matrix, 3, delta=4.0, rng=9)
        assert len(result.biclusters) == 3
        assert isinstance(result, ChengChurchResult)
        assert result.elapsed_seconds > 0.0
        # Input must not be mutated by the masking step.
        assert matrix == DataMatrix(matrix.values)

    def test_validation(self):
        matrix = DataMatrix(np.ones((4, 4)))
        with pytest.raises(ValueError, match="n_biclusters"):
            find_biclusters(matrix, 0, delta=1.0)
        with pytest.raises(ValueError, match="delta"):
            find_biclusters(matrix, 1, delta=-1.0)

    def test_all_missing_rejected(self):
        matrix = DataMatrix(np.full((3, 3), NAN))
        with pytest.raises(ValueError, match="specified"):
            find_biclusters(matrix, 1, delta=1.0)

    def test_find_bicluster_direct(self):
        values = perfect_block(10, 8)
        bic = find_bicluster(values, delta=0.5)
        assert bic.n_rows == 10
        assert bic.n_cols == 8
        assert bic.to_delta_cluster().n_rows == 10


class TestFillMissing:
    def test_fills_all_missing(self):
        matrix = DataMatrix([[1.0, NAN], [NAN, 4.0]])
        filled = fill_missing_with_random(matrix, rng=0)
        assert filled.n_specified == 4
        # Fill values stay inside the observed range.
        assert filled.values.min() >= 1.0
        assert filled.values.max() <= 4.0

    def test_no_missing_is_identity(self):
        matrix = DataMatrix([[1.0, 2.0]])
        assert fill_missing_with_random(matrix, rng=0) == matrix

    def test_explicit_range(self):
        matrix = DataMatrix([[NAN, 5.0]])
        filled = fill_missing_with_random(matrix, rng=0, fill_range=(0.0, 1.0))
        assert 0.0 <= filled.values[0, 0] <= 1.0
