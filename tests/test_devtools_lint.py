"""Self-tests for the DCL invariant linter (:mod:`repro.devtools`).

Every rule gets positive fixtures (a violating snippet must fire) and
negative fixtures (compliant code must stay silent), suppression
comments are exercised in both file- and line-level form, and a smoke
test asserts the real ``src/`` tree is clean -- the same gate CI runs.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools.lint import LintReport, collect_files, lint_paths, lint_source, main
from repro.devtools.rules import RULES, all_rules

pytestmark = pytest.mark.devtools

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

CORE_PATH = "src/repro/core/fixture.py"
OTHER_PATH = "src/repro/data/fixture.py"
TEST_PATH = "tests/fixture.py"


def codes(violations):
    return [v.rule for v in violations]


# ----------------------------------------------------------------------
# DCL001 -- no global RNG state
# ----------------------------------------------------------------------
class TestGlobalRng:
    def test_legacy_numpy_call_fires(self):
        src = "import numpy as np\n__all__ = []\nx = np.random.rand(3)\n"
        assert codes(lint_source(src, OTHER_PATH)) == ["DCL001"]

    def test_numpy_seed_fires(self):
        src = "import numpy as np\n__all__ = []\nnp.random.seed(0)\n"
        assert codes(lint_source(src, OTHER_PATH)) == ["DCL001"]

    def test_bare_default_rng_fires(self):
        src = "import numpy as np\n__all__ = []\ng = np.random.default_rng()\n"
        assert codes(lint_source(src, OTHER_PATH)) == ["DCL001"]

    def test_seeded_default_rng_ok(self):
        src = "import numpy as np\n__all__ = []\ng = np.random.default_rng(42)\n"
        assert lint_source(src, OTHER_PATH) == []

    def test_generator_methods_ok(self):
        src = (
            "import numpy as np\n__all__ = []\n"
            "g = np.random.default_rng(1)\nx = g.uniform(0, 1, 5)\n"
        )
        assert lint_source(src, OTHER_PATH) == []

    def test_stdlib_random_fires(self):
        src = "import random\n__all__ = []\nx = random.shuffle([1, 2])\n"
        assert codes(lint_source(src, OTHER_PATH)) == ["DCL001"]

    def test_stdlib_from_import_fires(self):
        src = "from random import choice\n__all__ = []\nx = choice([1, 2])\n"
        assert codes(lint_source(src, OTHER_PATH)) == ["DCL001"]

    def test_random_class_instances_ok(self):
        src = "import random\n__all__ = []\nr = random.Random(7)\n"
        assert lint_source(src, OTHER_PATH) == []

    def test_numpy_alias_tracked(self):
        src = "import numpy\n__all__ = []\nnumpy.random.normal(0, 1)\n"
        assert codes(lint_source(src, OTHER_PATH)) == ["DCL001"]

    def test_tests_tree_exempt(self):
        src = "import numpy as np\nnp.random.seed(0)\n"
        assert lint_source(src, TEST_PATH) == []


# ----------------------------------------------------------------------
# DCL002 -- no wall-clock reads in core/
# ----------------------------------------------------------------------
class TestWallClock:
    @pytest.mark.parametrize(
        "call",
        ["time.time()", "time.perf_counter()", "time.monotonic()"],
    )
    def test_time_calls_fire_in_core(self, call):
        src = f"import time\n__all__ = []\nt = {call}\n"
        assert codes(lint_source(src, CORE_PATH)) == ["DCL002"]

    def test_datetime_now_fires_in_core(self):
        src = (
            "from datetime import datetime\n__all__ = []\n"
            "t = datetime.now()\n"
        )
        assert codes(lint_source(src, CORE_PATH)) == ["DCL002"]

    def test_from_import_perf_counter_fires(self):
        src = "from time import perf_counter\n__all__ = []\nt = perf_counter()\n"
        assert codes(lint_source(src, CORE_PATH)) == ["DCL002"]

    def test_outside_core_exempt(self):
        src = "import time\n__all__ = []\nt = time.perf_counter()\n"
        assert lint_source(src, OTHER_PATH) == []

    def test_tracer_clock_seam_ok(self):
        src = (
            "__all__ = []\n"
            "def run(tracer):\n    return tracer.clock()\n"
        )
        assert "DCL002" not in codes(lint_source(src, CORE_PATH))


# ----------------------------------------------------------------------
# DCL003 -- no NaN-aggregation in core/
# ----------------------------------------------------------------------
class TestNanAggregation:
    @pytest.mark.parametrize("fn", ["nanmean", "nansum", "nanstd"])
    def test_nan_aggregates_fire_in_core(self, fn):
        src = f"import numpy as np\n__all__ = []\nx = np.{fn}([1.0])\n"
        assert codes(lint_source(src, CORE_PATH)) == ["DCL003"]

    def test_count_aware_mean_ok(self):
        src = (
            "import numpy as np\n__all__ = ['m']\n"
            "def m(a, mask):\n"
            "    return np.where(mask, a, 0.0).sum() / mask.sum()\n"
        )
        assert lint_source(src, CORE_PATH) == []

    def test_outside_core_exempt(self):
        src = "import numpy as np\n__all__ = []\nx = np.nanmean([1.0])\n"
        assert lint_source(src, OTHER_PATH) == []


# ----------------------------------------------------------------------
# DCL004 -- public core functions accept rng as a parameter
# ----------------------------------------------------------------------
class TestRngParameter:
    def test_internal_construction_fires(self):
        src = (
            "import numpy as np\n__all__ = ['sample']\n"
            "def sample(n):\n"
            "    g = np.random.default_rng(0)\n"
            "    return g.uniform(size=n)\n"
        )
        assert "DCL004" in codes(lint_source(src, CORE_PATH))

    def test_resolve_rng_without_param_fires(self):
        src = (
            "from repro.core.rng import resolve_rng\n__all__ = ['sample']\n"
            "def sample(n):\n"
            "    g = resolve_rng(None)\n"
            "    return g\n"
        )
        assert "DCL004" in codes(lint_source(src, CORE_PATH))

    def test_rng_parameter_ok(self):
        src = (
            "from repro.core.rng import resolve_rng\n__all__ = ['sample']\n"
            "def sample(n, rng=None):\n"
            "    g = resolve_rng(rng)\n"
            "    return g\n"
        )
        assert "DCL004" not in codes(lint_source(src, CORE_PATH))

    def test_private_function_exempt(self):
        src = (
            "import numpy as np\n__all__ = []\n"
            "def _helper():\n"
            "    return np.random.default_rng(3)\n"
        )
        assert "DCL004" not in codes(lint_source(src, CORE_PATH))

    def test_outside_core_exempt(self):
        src = (
            "import numpy as np\n__all__ = ['sample']\n"
            "def sample(n):\n"
            "    return np.random.default_rng(0).uniform(size=n)\n"
        )
        assert "DCL004" not in codes(lint_source(src, OTHER_PATH))


# ----------------------------------------------------------------------
# DCL005 -- __all__ hygiene
# ----------------------------------------------------------------------
class TestDunderAll:
    def test_missing_dunder_all_fires(self):
        src = "def public():\n    return 1\n"
        assert codes(lint_source(src, OTHER_PATH)) == ["DCL005"]

    def test_unknown_name_fires(self):
        src = "__all__ = ['ghost']\n"
        assert codes(lint_source(src, OTHER_PATH)) == ["DCL005"]

    def test_unlisted_public_def_fires(self):
        src = "__all__ = ['a']\ndef a():\n    pass\ndef b():\n    pass\n"
        violations = lint_source(src, OTHER_PATH)
        assert codes(violations) == ["DCL005"]
        assert "'b'" in violations[0].message

    def test_duplicate_entry_fires(self):
        src = "__all__ = ['a', 'a']\ndef a():\n    pass\n"
        assert codes(lint_source(src, OTHER_PATH)) == ["DCL005"]

    def test_clean_module_ok(self):
        src = (
            "__all__ = ['CONST', 'a']\nCONST = 3\n"
            "def a():\n    pass\ndef _hidden():\n    pass\n"
        )
        assert lint_source(src, OTHER_PATH) == []

    def test_imports_count_as_bound(self):
        src = "from os.path import join\n__all__ = ['join']\n"
        assert lint_source(src, OTHER_PATH) == []

    def test_module_getattr_allows_lazy_names(self):
        src = (
            "__all__ = ['lazy']\n"
            "def __getattr__(name):\n    raise AttributeError(name)\n"
        )
        assert lint_source(src, OTHER_PATH) == []

    def test_dunder_main_exempt(self):
        src = "def run():\n    pass\n"
        assert lint_source(src, "src/repro/__main__.py") == []


# ----------------------------------------------------------------------
# DCL006 -- no writes to module-level mutable state in core/
# ----------------------------------------------------------------------
class TestMutableGlobalWrite:
    def test_global_rebinding_fires(self):
        src = (
            "__all__ = []\n_BEST = None\n"
            "def _remember(x):\n    global _BEST\n    _BEST = x\n"
        )
        assert codes(lint_source(src, CORE_PATH)) == ["DCL006"]

    def test_item_write_fires(self):
        src = (
            "__all__ = []\nCACHE = {}\n"
            "def _put(k, v):\n    CACHE[k] = v\n"
        )
        assert codes(lint_source(src, CORE_PATH)) == ["DCL006"]

    def test_item_delete_fires(self):
        src = (
            "__all__ = []\nCACHE = dict()\n"
            "def _drop(k):\n    del CACHE[k]\n"
        )
        assert codes(lint_source(src, CORE_PATH)) == ["DCL006"]

    def test_mutator_method_fires(self):
        src = (
            "__all__ = []\nREGISTRY = []\n"
            "def _register(x):\n    REGISTRY.append(x)\n"
        )
        assert codes(lint_source(src, CORE_PATH)) == ["DCL006"]

    def test_factory_call_global_tracked(self):
        src = (
            "from collections import defaultdict\n__all__ = []\n"
            "HITS = defaultdict(int)\n"
            "def _hit(k):\n    HITS.update({k: 1})\n"
        )
        assert codes(lint_source(src, CORE_PATH)) == ["DCL006"]

    def test_environ_write_fires(self):
        src = (
            "import os\n__all__ = []\n"
            "def _taint():\n    os.environ['SEED'] = '1'\n"
        )
        assert codes(lint_source(src, CORE_PATH)) == ["DCL006"]

    def test_environ_update_fires(self):
        src = (
            "import os\n__all__ = []\n"
            "def _taint():\n    os.environ.update(SEED='1')\n"
        )
        assert codes(lint_source(src, CORE_PATH)) == ["DCL006"]

    def test_putenv_fires(self):
        src = "import os\n__all__ = []\ndef _taint():\n    os.putenv('A', 'b')\n"
        assert codes(lint_source(src, CORE_PATH)) == ["DCL006"]

    def test_local_shadow_ok(self):
        src = (
            "__all__ = []\nCACHE = {}\n"
            "def _work():\n    CACHE = {}\n    CACHE['k'] = 1\n    return CACHE\n"
        )
        assert lint_source(src, CORE_PATH) == []

    def test_parameter_shadow_ok(self):
        src = (
            "__all__ = []\nREGISTRY = []\n"
            "def _register(REGISTRY, x):\n    REGISTRY.append(x)\n"
        )
        assert lint_source(src, CORE_PATH) == []

    def test_reading_global_ok(self):
        src = (
            "__all__ = []\nLIMITS = {'rows': 3}\n"
            "def _floor():\n    return LIMITS['rows']\n"
        )
        assert lint_source(src, CORE_PATH) == []

    def test_immutable_global_rebind_not_mutation(self):
        src = (
            "__all__ = []\nSCALE = 2.0\n"
            "def _use():\n    x = SCALE\n    return x\n"
        )
        assert lint_source(src, CORE_PATH) == []

    def test_module_level_init_ok(self):
        src = (
            "__all__ = []\nTABLE = {}\nTABLE['a'] = 1\n"
        )
        assert lint_source(src, CORE_PATH) == []

    def test_outside_core_exempt(self):
        src = (
            "__all__ = []\nCACHE = {}\n"
            "def _put(k, v):\n    CACHE[k] = v\n"
        )
        assert lint_source(src, OTHER_PATH) == []

    def test_nested_function_analyzed(self):
        src = (
            "__all__ = []\nSEEN = set()\n"
            "def _outer():\n"
            "    def _inner(x):\n        SEEN.add(x)\n"
            "    return inner\n"
        )
        assert codes(lint_source(src, CORE_PATH)) == ["DCL006"]


# ----------------------------------------------------------------------
# DCL007 -- no silent exception swallowing in core/ and runtime/
# ----------------------------------------------------------------------
RUNTIME_PATH = "src/repro/runtime/fixture.py"


class TestExceptionSwallow:
    def test_bare_except_fires(self):
        src = (
            "__all__ = []\n"
            "def _f():\n"
            "    try:\n        return 1\n"
            "    except:\n        return 0\n"
        )
        assert codes(lint_source(src, CORE_PATH)) == ["DCL007"]

    def test_bare_except_fires_in_runtime(self):
        src = (
            "__all__ = []\n"
            "def _f():\n"
            "    try:\n        return 1\n"
            "    except:\n        return 0\n"
        )
        assert codes(lint_source(src, RUNTIME_PATH)) == ["DCL007"]

    def test_broad_except_pass_fires(self):
        src = (
            "__all__ = []\n"
            "def _f():\n"
            "    try:\n        _g()\n"
            "    except Exception:\n        pass\n"
        )
        assert codes(lint_source(src, CORE_PATH)) == ["DCL007"]

    def test_base_exception_ellipsis_fires(self):
        src = (
            "__all__ = []\n"
            "def _f():\n"
            "    try:\n        _g()\n"
            "    except BaseException:\n        ...\n"
        )
        assert codes(lint_source(src, RUNTIME_PATH)) == ["DCL007"]

    def test_broad_except_continue_fires(self):
        src = (
            "__all__ = []\n"
            "def _f(items):\n"
            "    for item in items:\n"
            "        try:\n            _g(item)\n"
            "        except Exception:\n            continue\n"
        )
        assert codes(lint_source(src, RUNTIME_PATH)) == ["DCL007"]

    def test_broad_except_in_tuple_pass_fires(self):
        src = (
            "__all__ = []\n"
            "def _f():\n"
            "    try:\n        _g()\n"
            "    except (ValueError, Exception):\n        pass\n"
        )
        assert codes(lint_source(src, CORE_PATH)) == ["DCL007"]

    def test_broad_except_with_handling_ok(self):
        src = (
            "__all__ = []\n"
            "def _f(log):\n"
            "    try:\n        return _g()\n"
            "    except Exception as exc:\n"
            "        log.append(exc)\n        return None\n"
        )
        assert lint_source(src, CORE_PATH) == []

    def test_broad_except_reraise_ok(self):
        src = (
            "__all__ = []\n"
            "def _f():\n"
            "    try:\n        return _g()\n"
            "    except Exception:\n        raise\n"
        )
        assert lint_source(src, RUNTIME_PATH) == []

    def test_specific_except_pass_ok(self):
        src = (
            "__all__ = []\n"
            "def _f():\n"
            "    try:\n        return _g()\n"
            "    except ValueError:\n        pass\n"
        )
        assert lint_source(src, CORE_PATH) == []

    def test_outside_core_and_runtime_exempt(self):
        src = (
            "__all__ = []\n"
            "def _f():\n"
            "    try:\n        return 1\n"
            "    except:\n        return 0\n"
        )
        assert lint_source(src, OTHER_PATH) == []


# ----------------------------------------------------------------------
# DCL008 -- no wall-clock reads in obs/perf/
# ----------------------------------------------------------------------
PERF_PATH = "src/repro/obs/perf/fixture.py"


class TestPerfWallClock:
    @pytest.mark.parametrize(
        "call",
        ["time.time()", "time.perf_counter()", "time.monotonic()"],
    )
    def test_time_calls_fire_in_perf(self, call):
        src = f"import time\n__all__ = []\nt = {call}\n"
        assert codes(lint_source(src, PERF_PATH)) == ["DCL008"]

    def test_from_import_perf_counter_fires(self):
        src = "from time import perf_counter\n__all__ = []\nt = perf_counter()\n"
        assert codes(lint_source(src, PERF_PATH)) == ["DCL008"]

    def test_datetime_now_fires_in_perf(self):
        src = (
            "from datetime import datetime\n__all__ = []\n"
            "t = datetime.now()\n"
        )
        assert codes(lint_source(src, PERF_PATH)) == ["DCL008"]

    def test_clock_attribute_reference_ok(self):
        # The seam itself: referencing Tracer.clock (no call) is the
        # sanctioned way to obtain a default clock.
        src = (
            "from repro.obs.tracer import Tracer\n"
            "__all__ = ['DEFAULT_CLOCK']\n"
            "DEFAULT_CLOCK = Tracer.clock\n"
        )
        assert lint_source(src, PERF_PATH) == []

    def test_injected_clock_call_ok(self):
        src = (
            "__all__ = ['timed']\n"
            "def timed(clock):\n    return clock()\n"
        )
        assert lint_source(src, PERF_PATH) == []

    def test_outside_perf_exempt(self):
        src = "import time\n__all__ = []\nt = time.perf_counter()\n"
        assert lint_source(src, OTHER_PATH) == []


# ----------------------------------------------------------------------
# DCL009 -- no per-slot scalar gain evaluators in core sweep code
# ----------------------------------------------------------------------
ENGINE_PATH = "src/repro/core/gain_engine.py"


class TestScalarEvaluator:
    @pytest.mark.parametrize("method", ["exact_candidate", "fast_candidate"])
    def test_scalar_evaluator_call_fires_in_core(self, method):
        src = (
            "__all__ = ['sweep']\n"
            f"def sweep(state):\n    return state.{method}('row', 0, 0)\n"
        )
        assert codes(lint_source(src, CORE_PATH)) == ["DCL009"]

    def test_defining_the_method_is_ok(self):
        # floc.py *defines* exact_candidate; only call sites re-enter
        # the per-slot rescan path.
        src = (
            "__all__ = []\n"
            "class _State:  # noqa fixture\n"
            "    def exact_candidate(self, kind, index, c):\n"
            "        return 0.0, 0\n"
        )
        assert lint_source(src, CORE_PATH) == []

    def test_engine_module_exempt(self):
        src = (
            "__all__ = ['lane']\n"
            "def lane(state):\n    return state.exact_candidate('row', 0, 0)\n"
        )
        assert lint_source(src, ENGINE_PATH) == []

    def test_outside_core_exempt(self):
        src = (
            "__all__ = ['probe']\n"
            "def probe(state):\n    return state.exact_candidate('row', 0, 0)\n"
        )
        assert lint_source(src, OTHER_PATH) == []

    def test_tests_exempt(self):
        src = "def test_x(state):\n    state.fast_candidate('row', 0, 0)\n"
        assert lint_source(src, TEST_PATH) == []


# ----------------------------------------------------------------------
# Suppression comments
# ----------------------------------------------------------------------
class TestSuppression:
    VIOLATING = "import numpy as np\n__all__ = []\nnp.random.seed(0)\n"

    def test_file_level_disable(self):
        src = "# dcl: disable=DCL001\n" + self.VIOLATING
        assert lint_source(src, OTHER_PATH) == []

    def test_line_level_disable(self):
        src = (
            "import numpy as np\n__all__ = []\n"
            "np.random.seed(0)  # dcl: disable=DCL001\n"
        )
        assert lint_source(src, OTHER_PATH) == []

    def test_line_level_only_covers_its_line(self):
        src = (
            "import numpy as np\n__all__ = []\n"
            "np.random.seed(0)  # dcl: disable=DCL001\n"
            "np.random.seed(1)\n"
        )
        assert codes(lint_source(src, OTHER_PATH)) == ["DCL001"]

    def test_multiple_codes_and_all(self):
        src = "# dcl: disable=DCL001, DCL005\nimport numpy as np\nnp.random.seed(0)\ndef f():\n    pass\n"
        assert lint_source(src, OTHER_PATH) == []
        src_all = "# dcl: disable=all\nimport numpy as np\nnp.random.seed(0)\n"
        assert lint_source(src_all, OTHER_PATH) == []

    def test_unrelated_code_not_suppressed(self):
        src = "# dcl: disable=DCL005\n" + self.VIOLATING
        assert codes(lint_source(src, OTHER_PATH)) == ["DCL001"]


# ----------------------------------------------------------------------
# Suppression validation (malformed / unknown / stale) and strict mode
# ----------------------------------------------------------------------
class TestSuppressionValidation:
    VIOLATING = "import numpy as np\n__all__ = []\nnp.random.seed(0)\n"

    def test_malformed_code_warns_instead_of_silently_ignoring(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text(
            "import numpy as np\n__all__ = []\n"
            "np.random.seed(0)  # dcl: disable=DCL01\n"
        )
        report = lint_paths([str(mod)])
        # The malformed code does not suppress...
        assert [v.rule for v in report.violations] == ["DCL001"]
        # ...and is surfaced as a warning, not dropped on the floor.
        assert [w.kind for w in report.suppression_warnings] == [
            "malformed-code"
        ]
        assert report.suppression_warnings[0].code == "DCL01"

    def test_valid_codes_beside_malformed_still_apply(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text(
            "import numpy as np\n__all__ = []\n"
            "np.random.seed(0)  # dcl: disable=DCL01,DCL001\n"
        )
        report = lint_paths([str(mod)])
        assert report.violations == []
        assert [w.code for w in report.suppression_warnings] == ["DCL01"]

    def test_unknown_rule_code_warns(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text("__all__ = []\nx = 1  # dcl: disable=DCL999\n")
        report = lint_paths([str(mod)])
        assert [w.kind for w in report.suppression_warnings] == [
            "unknown-code"
        ]

    def test_stale_line_suppression_is_detected(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text("__all__ = []\nx = 1  # dcl: disable=DCL001\n")
        report = lint_paths([str(mod)])
        assert [w.kind for w in report.stale_suppressions] == ["stale"]
        assert report.stale_suppressions[0].code == "DCL001"

    def test_live_suppression_is_not_stale(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text(
            "import numpy as np\n__all__ = []\n"
            "np.random.seed(0)  # dcl: disable=DCL001\n"
        )
        report = lint_paths([str(mod)])
        assert report.stale_suppressions == []

    def test_file_level_suppressions_are_exempt_from_staleness(
        self, tmp_path
    ):
        # The repro.core.rng precedent: a file-level directive
        # sanctions a seam and may outlive any individual firing line.
        mod = tmp_path / "m.py"
        mod.write_text("# dcl: disable=DCL001\n__all__ = []\nx = 1\n")
        report = lint_paths([str(mod)])
        assert report.stale_suppressions == []

    def test_directives_inside_strings_are_ignored(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text(
            '"""Docs show the syntax: # dcl: disable=DCL001 ..."""\n'
            "import numpy as np\n__all__ = []\n"
            "np.random.seed(0)\n"
        )
        report = lint_paths([str(mod)])
        # The docstring neither suppresses nor produces stale warnings.
        assert [v.rule for v in report.violations] == ["DCL001"]
        assert report.stale_suppressions == []

    def test_strict_flag_fails_on_warnings(self, tmp_path, capsys):
        mod = tmp_path / "m.py"
        mod.write_text("__all__ = []\nx = 1  # dcl: disable=DCL01\n")
        assert main([str(mod)]) == 0
        capsys.readouterr()
        assert main([str(mod), "--strict-suppressions"]) == 1
        assert "malformed" in capsys.readouterr().err

    def test_strict_flag_fails_on_stale(self, tmp_path, capsys):
        mod = tmp_path / "m.py"
        mod.write_text("__all__ = []\nx = 1  # dcl: disable=DCL005\n")
        assert main([str(mod)]) == 0
        capsys.readouterr()
        assert main([str(mod), "--strict-suppressions"]) == 1
        assert "stale" in capsys.readouterr().err

    def test_json_carries_warning_and_count_fields(self, tmp_path, capsys):
        mod = tmp_path / "m.py"
        mod.write_text(
            "import numpy as np\n__all__ = []\nnp.random.seed(0)\n"
        )
        main([str(mod), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["rule_counts"] == {"DCL001": 1}
        assert payload["suppression_warnings"] == []
        assert payload["stale_suppressions"] == []
        assert payload["deep"] is None


# ----------------------------------------------------------------------
# Engine / CLI behaviour
# ----------------------------------------------------------------------
class TestEngine:
    def test_select_filters_rules(self):
        rules = all_rules(["DCL001"])
        assert [r.code for r in rules] == ["DCL001"]
        src = "import numpy as np\nnp.random.seed(0)\ndef f():\n    pass\n"
        assert codes(lint_source(src, OTHER_PATH, rules)) == ["DCL001"]

    def test_select_unknown_code_raises(self):
        with pytest.raises(ValueError, match="DCL999"):
            all_rules(["DCL999"])

    def test_registry_is_complete(self):
        assert [cls.code for cls in RULES] == [
            "DCL001", "DCL002", "DCL003", "DCL004", "DCL005", "DCL006",
            "DCL007", "DCL008", "DCL009",
        ]

    def test_collect_files_skips_pycache(self, tmp_path):
        (tmp_path / "pkg" / "__pycache__").mkdir(parents=True)
        (tmp_path / "pkg" / "mod.py").write_text("__all__ = []\n")
        (tmp_path / "pkg" / "__pycache__" / "junk.py").write_text("x = 1\n")
        files = collect_files([str(tmp_path)])
        assert [f.name for f in files] == ["mod.py"]

    def test_lint_paths_reports_syntax_errors(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        report = lint_paths([str(bad)])
        assert isinstance(report, LintReport)
        assert not report.clean
        assert report.parse_errors and "syntax error" in report.parse_errors[0][1]

    def test_main_json_format(self, tmp_path, capsys):
        mod = tmp_path / "repro" / "core" / "m.py"
        mod.parent.mkdir(parents=True)
        mod.write_text("import time\n__all__ = []\nt = time.time()\n")
        status = main([str(tmp_path), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert status == 1
        assert payload["files_checked"] == 1
        assert [v["rule"] for v in payload["violations"]] == ["DCL002"]

    def test_main_missing_path_is_usage_error(self, capsys):
        assert main(["definitely/not/a/path"]) == 2
        assert "error" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("DCL001", "DCL002", "DCL003", "DCL004",
                     "DCL005", "DCL006"):
            assert code in out


# ----------------------------------------------------------------------
# The real tree is clean -- the CI gate
# ----------------------------------------------------------------------
class TestRealTree:
    def test_src_tree_is_clean(self):
        report = lint_paths([str(SRC)])
        assert report.files_checked > 40
        assert report.violations == []
        assert report.parse_errors == []

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.devtools.lint", str(SRC)],
            capture_output=True, text=True,
            cwd=str(REPO_ROOT),
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_cli_subcommand(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["lint", str(SRC)]) == 0
