"""Unit tests for Phase-1 seeding (Sections 4.1 and 5.1)."""

import numpy as np
import pytest

from repro.core.cluster import DeltaCluster
from repro.core.seeding import (
    axis_seeds,
    bernoulli_seeds,
    mixed_seeds,
    seeds_from_clusters,
    volume_seeds,
)


class TestBernoulliSeeds:
    def test_count_and_shapes(self):
        rng = np.random.default_rng(0)
        seeds = bernoulli_seeds(50, 20, 5, 0.3, rng)
        assert len(seeds) == 5
        for rows, cols in seeds:
            assert rows.shape == (50,)
            assert cols.shape == (20,)
            assert rows.dtype == bool

    def test_expected_size(self):
        rng = np.random.default_rng(1)
        seeds = bernoulli_seeds(2000, 1000, 10, 0.25, rng)
        row_fraction = np.mean([s[0].mean() for s in seeds])
        col_fraction = np.mean([s[1].mean() for s in seeds])
        assert row_fraction == pytest.approx(0.25, abs=0.03)
        assert col_fraction == pytest.approx(0.25, abs=0.03)

    def test_minimum_enforced(self):
        rng = np.random.default_rng(2)
        seeds = bernoulli_seeds(100, 30, 20, 0.01, rng, min_rows=2, min_cols=2)
        for rows, cols in seeds:
            assert rows.sum() >= 2
            assert cols.sum() >= 2

    def test_deterministic(self):
        a = bernoulli_seeds(30, 10, 3, 0.5, np.random.default_rng(9))
        b = bernoulli_seeds(30, 10, 3, 0.5, np.random.default_rng(9))
        for (ra, ca), (rb, cb) in zip(a, b):
            assert (ra == rb).all() and (ca == cb).all()


class TestMixedSeeds:
    def test_p_values_cycled(self):
        rng = np.random.default_rng(3)
        seeds = mixed_seeds(4000, 4000, 4, [0.05, 0.5], rng)
        sizes = [s[0].mean() for s in seeds]
        # Seeds 0 and 2 use p=0.05, seeds 1 and 3 use p=0.5.
        assert sizes[0] < 0.15 < sizes[1]
        assert sizes[2] < 0.15 < sizes[3]

    def test_invalid_p(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="probability"):
            mixed_seeds(10, 10, 2, [0.0], rng)
        with pytest.raises(ValueError, match="probability"):
            mixed_seeds(10, 10, 2, [1.5], rng)

    def test_empty_p_values(self):
        with pytest.raises(ValueError, match="empty"):
            mixed_seeds(10, 10, 2, [], np.random.default_rng(0))

    def test_invalid_k(self):
        with pytest.raises(ValueError, match="k"):
            mixed_seeds(10, 10, 0, [0.3], np.random.default_rng(0))

    def test_matrix_too_small(self):
        with pytest.raises(ValueError, match="too small"):
            mixed_seeds(1, 10, 2, [0.3], np.random.default_rng(0), min_rows=2)


class TestAxisSeeds:
    def test_paper_table23_proportions(self):
        # "0.05 x N rows and 0.2 x M columns" (Section 6.2.1).
        rng = np.random.default_rng(0)
        seeds = axis_seeds(3000, 1000, 10, 0.05, 0.2, rng)
        row_fraction = np.mean([s[0].mean() for s in seeds])
        col_fraction = np.mean([s[1].mean() for s in seeds])
        assert row_fraction == pytest.approx(0.05, abs=0.01)
        assert col_fraction == pytest.approx(0.2, abs=0.03)

    def test_minimums_enforced(self):
        rng = np.random.default_rng(1)
        seeds = axis_seeds(50, 20, 5, 0.01, 0.01, rng, min_rows=3, min_cols=3)
        for rows, cols in seeds:
            assert rows.sum() >= 3
            assert cols.sum() >= 3

    def test_validation(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ValueError, match="k"):
            axis_seeds(10, 10, 0, 0.5, 0.5, rng)
        with pytest.raises(ValueError, match="p_rows"):
            axis_seeds(10, 10, 1, 0.0, 0.5, rng)
        with pytest.raises(ValueError, match="p_cols"):
            axis_seeds(10, 10, 1, 0.5, 1.5, rng)
        with pytest.raises(ValueError, match="too small"):
            axis_seeds(1, 10, 1, 0.5, 0.5, rng, min_rows=2)

    def test_usable_as_floc_seeds(self):
        from repro import DataMatrix, floc

        rng = np.random.default_rng(3)
        matrix = DataMatrix(rng.normal(size=(30, 12)))
        seeds = axis_seeds(30, 12, 2, 0.2, 0.4, np.random.default_rng(4))
        result = floc(matrix, 2, seeds=seeds, rng=5, max_iterations=5)
        assert len(result.clustering) == 2


class TestVolumeSeeds:
    def test_volumes_respected_approximately(self):
        rng = np.random.default_rng(4)
        seeds = volume_seeds(300, 100, [300.0, 1200.0], rng)
        cells = [int(r.sum()) * int(c.sum()) for r, c in seeds]
        assert cells[0] == pytest.approx(300, rel=0.4)
        assert cells[1] == pytest.approx(1200, rel=0.4)

    def test_aspect_ratio_followed(self):
        rng = np.random.default_rng(5)
        ((rows, cols),) = volume_seeds(1000, 10, [400.0], rng)
        # 1000x10 matrix: a 400-cell seed should be much taller than wide.
        assert rows.sum() > cols.sum()

    def test_invalid_volume(self):
        with pytest.raises(ValueError, match="positive"):
            volume_seeds(10, 10, [0.0], np.random.default_rng(0))

    def test_distinct_members(self):
        rng = np.random.default_rng(6)
        ((rows, cols),) = volume_seeds(20, 20, [100.0], rng)
        # Boolean representation cannot double-count, but the counts must
        # stay within matrix bounds.
        assert rows.sum() <= 20
        assert cols.sum() <= 20


class TestSeedsFromClusters:
    def test_round_trip(self):
        cluster = DeltaCluster((1, 3), (0, 2))
        ((rows, cols),) = seeds_from_clusters(5, 4, [cluster])
        assert np.flatnonzero(rows).tolist() == [1, 3]
        assert np.flatnonzero(cols).tolist() == [0, 2]

    def test_out_of_range(self):
        cluster = DeltaCluster((10,), (0,))
        with pytest.raises(IndexError):
            seeds_from_clusters(5, 4, [cluster])

    def test_empty_cluster_gives_empty_seed(self):
        ((rows, cols),) = seeds_from_clusters(3, 3, [DeltaCluster((), ())])
        assert rows.sum() == 0
        assert cols.sum() == 0
