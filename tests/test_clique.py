"""Unit tests for the CLIQUE subspace clustering substrate."""

import numpy as np
import pytest

from repro.subspace.clique import clique

NAN = float("nan")


def planted_subspace_data(rng_seed=0, n_points=200):
    """Points uniform in 4-D; 40% of them clumped in dims (0, 2)."""
    rng = np.random.default_rng(rng_seed)
    data = rng.uniform(0.0, 100.0, size=(n_points, 4))
    members = rng.choice(n_points, size=int(0.4 * n_points), replace=False)
    data[members, 0] = rng.normal(20.0, 1.5, size=members.size)
    data[members, 2] = rng.normal(70.0, 1.5, size=members.size)
    return data, set(int(i) for i in members)


class TestValidation:
    def test_tau_range(self):
        with pytest.raises(ValueError, match="tau"):
            clique(np.ones((4, 2)), xi=2, tau=0.0)
        with pytest.raises(ValueError, match="tau"):
            clique(np.ones((4, 2)), xi=2, tau=1.0)

    def test_max_dims_validated(self):
        with pytest.raises(ValueError, match="max_dims"):
            clique(np.ones((4, 2)), xi=2, tau=0.5, max_dims=0)


class TestOneDimensional:
    def test_dense_bin_found(self):
        rng = np.random.default_rng(1)
        data = rng.uniform(0, 100, size=(100, 1))
        data[:60, 0] = rng.normal(50.0, 1.0, size=60)
        clusters = clique(data, xi=10, tau=0.2)
        assert clusters, "expected at least one dense region"
        biggest = max(clusters, key=lambda c: c.n_points)
        assert biggest.dims == (0,)
        assert biggest.n_points >= 55

    def test_uniform_data_sparse_with_high_tau(self):
        rng = np.random.default_rng(2)
        data = rng.uniform(0, 1, size=(100, 2))
        clusters = clique(data, xi=10, tau=0.5)
        assert clusters == []


class TestSubspaceDiscovery:
    def test_planted_2d_subspace_found(self):
        data, members = planted_subspace_data()
        clusters = clique(data, xi=10, tau=0.1)
        two_dim = [c for c in clusters if c.dims == (0, 2)]
        assert two_dim, "expected a cluster in subspace (0, 2)"
        best = max(two_dim, key=lambda c: c.n_points)
        # The cluster's points are mostly the planted members.
        overlap = len(best.points & members)
        assert overlap / best.n_points > 0.9
        assert overlap > 0.7 * len(members)

    def test_no_spurious_high_dim_clusters(self):
        data, __ = planted_subspace_data()
        clusters = clique(data, xi=10, tau=0.1)
        assert all(c.dimensionality <= 2 for c in clusters)

    def test_max_dims_caps_ladder(self):
        data, __ = planted_subspace_data()
        clusters = clique(data, xi=10, tau=0.1, max_dims=1)
        assert all(c.dimensionality == 1 for c in clusters)

    def test_min_points_filter(self):
        data, __ = planted_subspace_data()
        few = clique(data, xi=10, tau=0.1, min_points=1000)
        assert few == []


class TestConnectivity:
    def test_adjacent_bins_merge(self):
        # Points spread across two adjacent dense bins form ONE cluster.
        values = np.concatenate([
            np.random.default_rng(3).uniform(39.0, 41.0, size=60),
            np.random.default_rng(4).uniform(41.0, 43.0, size=60),
            np.random.default_rng(5).uniform(0.0, 100.0, size=30),
        ])
        data = values[:, None]
        clusters = clique(data, xi=25, tau=0.1)
        dense_1d = [c for c in clusters if c.dims == (0,)]
        assert len(dense_1d) == 1
        assert dense_1d[0].n_points >= 110

    def test_separated_bins_stay_apart(self):
        values = np.concatenate([
            np.random.default_rng(6).normal(10.0, 0.5, size=50),
            np.random.default_rng(7).normal(90.0, 0.5, size=50),
        ])
        data = values[:, None]
        clusters = clique(data, xi=10, tau=0.2)
        dense_1d = [c for c in clusters if c.dims == (0,)]
        assert len(dense_1d) == 2


class TestMissingValues:
    def test_missing_never_contributes(self):
        data = np.array([[NAN], [NAN], [NAN], [1.0], [1.0]])
        clusters = clique(data, xi=2, tau=0.3)
        for cluster in clusters:
            assert {0, 1, 2}.isdisjoint(cluster.points)
