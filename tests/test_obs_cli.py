"""CLI observability flags: --trace / --progress / --metrics smoke tests.

The acceptance contract: ``repro mine --trace out.jsonl --progress``
emits a valid JSONL trace whose per-iteration residues exactly match the
``FlocResult.history`` of the equivalent API run, and tracing does not
change what the CLI mines.
"""

import json

import pytest

from repro.cli import main
from repro.core.mining import mine_delta_clusters
from repro.data.io import load_matrix_npz
from repro.obs import read_jsonl

pytestmark = pytest.mark.obs

MINE_ARGS = [
    "--target", "2.0", "--k", "3", "--restarts", "2",
    "--reseed-rounds", "2", "--seed", "9",
]


@pytest.fixture(scope="module")
def matrix_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("obs_cli") / "matrix.npz"
    code = main([
        "generate", "synthetic",
        "--rows", "80", "--cols", "18", "--clusters", "2",
        "--cluster-rows", "12", "--cluster-cols", "6",
        "--noise", "1", "--seed", "4", "--out", str(path),
    ])
    assert code == 0
    return path


def test_trace_and_progress_smoke(matrix_path, tmp_path, capsys):
    trace_path = tmp_path / "out.jsonl"
    code = main([
        "mine", str(matrix_path), *MINE_ARGS,
        "--trace", str(trace_path), "--progress", "--metrics",
    ])
    assert code == 0
    captured = capsys.readouterr()
    assert f"trace written to {trace_path}" in captured.out
    assert "run metrics" in captured.out
    assert "actions_performed" in captured.out
    assert "iter" in captured.err  # progress goes to stderr

    # Every line of the trace is a JSON object with a type.
    with trace_path.open() as stream:
        lines = [line for line in stream if line.strip()]
    assert lines
    for line in lines:
        record = json.loads(line)
        assert record["type"] in {"seed", "action", "iteration"}


def test_trace_residues_match_history(matrix_path, tmp_path):
    trace_path = tmp_path / "out.jsonl"
    code = main([
        "mine", str(matrix_path), *MINE_ARGS, "--trace", str(trace_path),
    ])
    assert code == 0
    records = read_jsonl(trace_path)

    # The equivalent API session (same defaults as cmd_mine, same seed).
    result = mine_delta_clusters(
        load_matrix_npz(matrix_path),
        residue_target=2.0, k=3, n_restarts=2, max_clusters=None,
        min_rows=3, min_cols=3, alpha=0.0, p=0.2, reseed_rounds=2, rng=9,
    )
    for restart, run in enumerate(result.runs):
        residues = [
            r["residue"] for r in records
            if r["type"] == "iteration" and r["restart"] == restart
        ]
        assert residues == run.history
        assert len(run.iteration_times) == len(run.history)


def test_tracing_does_not_change_mined_clusters(matrix_path, tmp_path):
    plain_out = tmp_path / "plain.txt"
    traced_out = tmp_path / "traced.txt"
    assert main([
        "mine", str(matrix_path), *MINE_ARGS, "--out", str(plain_out),
    ]) == 0
    assert main([
        "mine", str(matrix_path), *MINE_ARGS, "--out", str(traced_out),
        "--trace", str(tmp_path / "t.jsonl"), "--metrics",
    ]) == 0
    assert plain_out.read_text() == traced_out.read_text()
