"""CLI observability flags: --trace / --progress / --metrics smoke tests.

The acceptance contract: ``repro mine --trace out.jsonl --progress``
emits a valid JSONL trace whose per-iteration residues exactly match the
``FlocResult.history`` of the equivalent API run, and tracing does not
change what the CLI mines.
"""

import json

import pytest

from repro.cli import main
from repro.core.mining import mine_delta_clusters
from repro.data.io import load_matrix_npz
from repro.obs import read_jsonl

pytestmark = pytest.mark.obs

MINE_ARGS = [
    "--target", "2.0", "--k", "3", "--restarts", "2",
    "--reseed-rounds", "2", "--seed", "9",
]


@pytest.fixture(scope="module")
def matrix_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("obs_cli") / "matrix.npz"
    code = main([
        "generate", "synthetic",
        "--rows", "80", "--cols", "18", "--clusters", "2",
        "--cluster-rows", "12", "--cluster-cols", "6",
        "--noise", "1", "--seed", "4", "--out", str(path),
    ])
    assert code == 0
    return path


def test_trace_and_progress_smoke(matrix_path, tmp_path, capsys):
    trace_path = tmp_path / "out.jsonl"
    code = main([
        "mine", str(matrix_path), *MINE_ARGS,
        "--trace", str(trace_path), "--progress", "--metrics",
    ])
    assert code == 0
    captured = capsys.readouterr()
    assert f"trace written to {trace_path}" in captured.out
    assert "run metrics" in captured.out
    assert "actions_performed" in captured.out
    assert "iter" in captured.err  # progress goes to stderr

    # Every line of the trace is a JSON object with a type.
    with trace_path.open() as stream:
        lines = [line for line in stream if line.strip()]
    assert lines
    for line in lines:
        record = json.loads(line)
        assert record["type"] in {"seed", "action", "iteration"}


def test_trace_residues_match_history(matrix_path, tmp_path):
    trace_path = tmp_path / "out.jsonl"
    code = main([
        "mine", str(matrix_path), *MINE_ARGS, "--trace", str(trace_path),
    ])
    assert code == 0
    records = read_jsonl(trace_path)

    # The equivalent API session (same defaults as cmd_mine, same seed).
    result = mine_delta_clusters(
        load_matrix_npz(matrix_path),
        residue_target=2.0, k=3, n_restarts=2, max_clusters=None,
        min_rows=3, min_cols=3, alpha=0.0, p=0.2, reseed_rounds=2, rng=9,
    )
    for restart, run in enumerate(result.runs):
        residues = [
            r["residue"] for r in records
            if r["type"] == "iteration" and r["restart"] == restart
        ]
        assert residues == run.history
        assert len(run.iteration_times) == len(run.history)


def test_tracing_does_not_change_mined_clusters(matrix_path, tmp_path):
    plain_out = tmp_path / "plain.txt"
    traced_out = tmp_path / "traced.txt"
    assert main([
        "mine", str(matrix_path), *MINE_ARGS, "--out", str(plain_out),
    ]) == 0
    assert main([
        "mine", str(matrix_path), *MINE_ARGS, "--out", str(traced_out),
        "--trace", str(tmp_path / "t.jsonl"), "--metrics",
    ]) == 0
    assert plain_out.read_text() == traced_out.read_text()


@pytest.fixture(scope="module")
def trace_path(matrix_path, tmp_path_factory):
    path = tmp_path_factory.mktemp("obs_cli_trace") / "trace.jsonl"
    assert main([
        "mine", str(matrix_path), *MINE_ARGS, "--trace", str(path),
    ]) == 0
    return path


class TestAnalyzeTraceCommand:
    def test_human_output(self, trace_path, capsys):
        assert main(["analyze-trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "records" in out
        assert "session [restart=0]" in out
        assert "session [restart=1]" in out
        assert "per-cluster lifetime" in out
        assert "gain histogram" in out

    def test_json_output_is_byte_identical(self, trace_path, capsys):
        assert main(["analyze-trace", str(trace_path), "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["analyze-trace", str(trace_path), "--json"]) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["schema"] == 1
        assert payload["warnings"] == []
        # Per-sweep counts agree with the raw IterationEvent fields.
        raw = read_jsonl(trace_path)
        iteration_actions = [
            r["n_actions"] for r in raw if r["type"] == "iteration"
        ]
        analyzed_actions = [
            sweep["actions_observed"]
            for session in payload["sessions"]
            for sweep in session["sweeps"]
        ]
        assert analyzed_actions == iteration_actions

    def test_missing_file_is_usage_error(self, capsys):
        assert main(["analyze-trace", "/no/such/trace.jsonl"]) == 2
        assert "no such trace file" in capsys.readouterr().err

    def test_malformed_trace_skipped_with_warning(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('garbage\n{"type": "seed"}\n')
        assert main(["analyze-trace", str(bad)]) == 0
        assert "corrupt line(s) skipped" in capsys.readouterr().err

    def test_malformed_trace_rejected_under_strict(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('garbage\n{"type": "seed"}\n')
        assert main(["analyze-trace", str(bad), "--strict"]) == 2
        assert "malformed trace" in capsys.readouterr().err

    def test_strict_flag_rejects_truncation(self, trace_path, tmp_path,
                                            capsys):
        cut = tmp_path / "cut.jsonl"
        text = trace_path.read_text()
        cut.write_text(text[: len(text) - 15])
        assert main(["analyze-trace", str(cut)]) == 0
        capsys.readouterr()
        assert main(["analyze-trace", str(cut), "--strict"]) == 2
        assert "malformed trace" in capsys.readouterr().err


class TestDiffTracesCommand:
    def test_self_diff_reports_no_divergence(self, trace_path, capsys):
        assert main([
            "diff-traces", str(trace_path), str(trace_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "0 only in A, 0 only in B" in out
        assert "no divergence beyond tol=0" in out

    def test_twinned_runs_diverge(self, matrix_path, trace_path, tmp_path,
                                  capsys):
        other = tmp_path / "other.jsonl"
        assert main([
            "mine", str(matrix_path),
            "--target", "2.0", "--k", "3", "--restarts", "2",
            "--reseed-rounds", "2", "--seed", "10",
            "--trace", str(other),
        ]) == 0
        capsys.readouterr()
        assert main(["diff-traces", str(trace_path), str(other)]) == 0
        out = capsys.readouterr().out
        assert "aligned iteration(s)" in out
        assert "first divergence at iteration" in out

    def test_json_output(self, trace_path, capsys):
        assert main([
            "diff-traces", str(trace_path), str(trace_path), "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        assert payload["n_only_a"] == 0
        assert payload["max_abs_residue_delta"] == 0.0
        assert payload["first_divergence_index"] is None

    def test_missing_file_is_usage_error(self, trace_path, capsys):
        assert main([
            "diff-traces", str(trace_path), "/no/such/b.jsonl",
        ]) == 2
        assert "no such trace file" in capsys.readouterr().err


class TestExportTraceCommand:
    @pytest.fixture(scope="class")
    def session_run(self, matrix_path, tmp_path_factory):
        """A tiny supervised traced run: (run_dir, merged trace path)."""
        base = tmp_path_factory.mktemp("export_cli")
        run_dir = base / "run"
        trace = base / "trace.jsonl"
        code = main([
            "mine", str(matrix_path), *MINE_ARGS,
            "--workers", "2", "--run-dir", str(run_dir),
            "--trace", str(trace),
        ])
        assert code == 0
        return run_dir, trace

    def test_supervised_trace_is_a_merged_session(self, session_run):
        _run_dir, trace = session_run
        records = read_jsonl(trace)
        assert records[0]["type"] == "session_meta"
        processes = records[0]["processes"]
        assert "supervisor" in processes
        assert any(name.startswith("worker:") for name in processes)

    def test_chrome_export_schema_and_monotonic_ts(
        self, session_run, tmp_path, capsys
    ):
        _run_dir, trace = session_run
        out = tmp_path / "chrome.json"
        assert main(["export-trace", str(trace), "--out", str(out)]) == 0
        assert "chrome trace written to" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert sorted(doc.keys()) == [
            "displayTimeUnit", "otherData", "traceEvents",
        ]
        assert doc["traceEvents"]
        stamped = [e["ts"] for e in doc["traceEvents"] if e["ph"] != "M"]
        assert stamped == sorted(stamped)
        assert all(ts >= 0.0 for ts in stamped)

    def test_chrome_export_deterministic_across_runs(
        self, session_run, tmp_path
    ):
        _run_dir, trace = session_run
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["export-trace", str(trace), "--out", str(a)]) == 0
        assert main(["export-trace", str(trace), "--out", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()

    def test_run_dir_source_matches_merged_file(
        self, session_run, tmp_path
    ):
        run_dir, trace = session_run
        from_dir = tmp_path / "dir.jsonl"
        assert main(["export-trace", str(run_dir), "--format", "jsonl",
                     "--out", str(from_dir)]) == 0
        assert from_dir.read_bytes() == trace.read_bytes()

    def test_otlp_export(self, session_run, tmp_path):
        _run_dir, trace = session_run
        out = tmp_path / "logs.json"
        assert main(["export-trace", str(trace), "--format", "otlp",
                     "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        log_records = (
            payload["resourceLogs"][0]["scopeLogs"][0]["logRecords"]
        )
        assert log_records
        bodies = {r["body"]["stringValue"] for r in log_records}
        assert "iteration" in bodies

    def test_missing_source_is_usage_error(self, tmp_path, capsys):
        code = main(["export-trace", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "no such trace" in capsys.readouterr().err

    def test_stdout_default(self, session_run, capsys):
        _run_dir, trace = session_run
        assert main(["export-trace", str(trace)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "traceEvents" in doc
