"""Tests for repro.obs.export: Chrome trace-event and OTLP renderings."""

import json
from pathlib import Path

from repro.obs.export import chrome_trace, export_chrome, export_otlp

GOLDEN_DIR = Path(__file__).parent / "data"

#: A hand-written merged session trace (collect_session output shape):
#: one supervised restart with a seed, one action, one sweep, and worker
#: resource telemetry.
SESSION_RECORDS = [
    {"type": "session_meta", "schema": 1, "session": "feedc0de00000000",
     "processes": ["supervisor", "worker:00000:00"], "n_records": 6,
     "skipped_shards": [], "corrupt_lines": {}},
    {"process": "supervisor", "seq": 0, "ts": 0.0, "type": "task",
     "restart": 0, "attempt": 0, "status": "dispatched", "wave": 0},
    {"process": "worker:00000:00", "seq": 0, "ts": 0.01, "type": "seed",
     "cluster": 0, "origin": "phase1", "restart": 0, "attempt": 0},
    {"process": "worker:00000:00", "seq": 1, "ts": 0.02, "type": "action",
     "kind": "row", "index": 3, "cluster": 0, "is_removal": False,
     "gain": 1.5, "restart": 0, "attempt": 0},
    {"process": "worker:00000:00", "seq": 2, "ts": 0.05, "type": "iteration",
     "index": 0, "residue": 1.25, "total_volume": 42, "n_actions": 3,
     "improved": True, "elapsed_s": 0.04, "restart": 0, "attempt": 0},
    {"process": "worker:00000:00", "seq": 3, "ts": 0.06, "type": "resource",
     "restart": 0, "attempt": 0, "max_rss_kb": 1000.0, "user_cpu_s": 0.01,
     "sys_cpu_s": 0.002},
    {"process": "supervisor", "seq": 1, "ts": 0.08, "type": "task",
     "restart": 0, "attempt": 0, "status": "completed", "elapsed_s": 0.08,
     "wave": 0},
]


def _events(doc, ph=None, cat=None):
    out = [e for e in doc["traceEvents"] if ph is None or e["ph"] == ph]
    if cat is not None:
        out = [e for e in out if e.get("cat") == cat]
    return out


class TestChromeTrace:
    def test_document_schema(self):
        doc = chrome_trace(SESSION_RECORDS)
        assert sorted(doc.keys()) == [
            "displayTimeUnit", "otherData", "traceEvents",
        ]
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"] == {
            "session": "feedc0de00000000",
            "n_records": len(SESSION_RECORDS),
            "n_actions_skipped": 1,
            "n_unstamped_skipped": 0,
        }
        for event in doc["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(event.keys())
            if event["ph"] != "M":
                assert event["ts"] >= 0.0

    def test_process_and_thread_metadata(self):
        doc = chrome_trace(SESSION_RECORDS)
        meta = _events(doc, ph="M")
        names = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in meta if e["name"] in ("process_name", "thread_name")
        }
        assert names[(1, 0)] == "supervisor"
        assert names[(2, 0)] == "worker:00000:00"
        assert names[(1, 1)] == "waves"
        assert names[(1, 2)] == "tasks"
        assert names[(2, 1)] == "sweeps"
        assert names[(2, 2)] == "events"
        sort_keys = {
            e["pid"]: e["args"]["sort_index"]
            for e in meta if e["name"] == "process_sort_index"
        }
        assert sort_keys == {1: 0, 2: 2}  # supervisor pinned on top

    def test_task_pairs_dispatch_with_completion(self):
        doc = chrome_trace(SESSION_RECORDS)
        (task,) = _events(doc, ph="X", cat="task")
        assert task["name"] == "restart 0"
        assert task["ts"] == 0.0
        assert task["dur"] == 80000.0  # 0.08 s in microseconds
        assert task["args"]["status"] == "completed"

    def test_wave_extent_event(self):
        doc = chrome_trace(SESSION_RECORDS)
        (wave,) = _events(doc, ph="X", cat="wave")
        assert wave["name"] == "wave 0"
        assert wave["pid"] == 1
        assert wave["ts"] == 0.0
        assert wave["dur"] == 80000.0

    def test_iteration_becomes_sweep_slice(self):
        doc = chrome_trace(SESSION_RECORDS)
        (sweep,) = _events(doc, ph="X", cat="sweep")
        assert sweep["name"] == "iter 0"
        assert sweep["ts"] == 10000.0  # starts elapsed_s before its stamp
        assert sweep["dur"] == 40000.0
        assert sweep["args"]["residue"] == 1.25

    def test_instants_carry_scope(self):
        doc = chrome_trace(SESSION_RECORDS)
        instants = _events(doc, ph="i")
        assert {e["cat"] for e in instants} == {"seed", "resource"}
        for event in instants:
            assert event["s"] == "t"
            assert "type" not in event["args"]

    def test_actions_skipped_not_rendered(self):
        doc = chrome_trace(SESSION_RECORDS)
        assert not any(e.get("cat") == "action" for e in doc["traceEvents"])
        assert doc["otherData"]["n_actions_skipped"] == 1

    def test_timestamps_monotonic_in_event_order(self):
        doc = chrome_trace(SESSION_RECORDS)
        stamped = [e["ts"] for e in doc["traceEvents"] if e["ph"] != "M"]
        assert stamped == sorted(stamped)

    def test_unstamped_records_counted(self):
        records = SESSION_RECORDS + [{"type": "seed", "cluster": 1}]
        doc = chrome_trace(records)
        assert doc["otherData"]["n_unstamped_skipped"] == 1

    def test_single_process_trace_degrades_to_main_track(self):
        records = [
            {"type": "seed", "cluster": 0, "ts": 1.0},
            {"type": "iteration", "index": 0, "residue": 2.0,
             "elapsed_s": 0.5, "ts": 2.0},
        ]
        doc = chrome_trace(records)
        meta = _events(doc, ph="M")
        process_names = [
            e["args"]["name"] for e in meta if e["name"] == "process_name"
        ]
        assert process_names == ["main"]

    def test_empty_input(self):
        doc = chrome_trace([])
        assert doc["traceEvents"] == []
        assert doc["otherData"]["n_records"] == 0

    def test_deterministic(self):
        assert chrome_trace(SESSION_RECORDS) == chrome_trace(SESSION_RECORDS)


class TestExportFiles:
    def test_export_chrome_byte_deterministic(self, tmp_path):
        a = export_chrome(SESSION_RECORDS, tmp_path / "a.json")
        b = export_chrome(SESSION_RECORDS, tmp_path / "b.json")
        assert a.read_bytes() == b.read_bytes()
        payload = json.loads(a.read_text())
        assert payload["otherData"]["session"] == "feedc0de00000000"

    def test_export_otlp_matches_golden(self, tmp_path):
        """OTLP/JSON LogsData rendering is pinned by a golden file.

        Regenerate (after reviewing the diff) with::

            PYTHONPATH=src python - <<'PY'
            from tests.test_obs_export import SESSION_RECORDS
            from repro.obs.export import export_otlp
            export_otlp(SESSION_RECORDS, "tests/data/otlp_logs_golden.json")
            PY
        """
        out = export_otlp(SESSION_RECORDS, tmp_path / "logs.json")
        golden = GOLDEN_DIR / "otlp_logs_golden.json"
        assert out.read_text() == golden.read_text()
        payload = json.loads(out.read_text())
        (resource_logs,) = payload["resourceLogs"]
        assert resource_logs["resource"]["attributes"] == [
            {"key": "service.name", "value": {"stringValue": "repro-floc"}},
        ]
        (scope_logs,) = resource_logs["scopeLogs"]
        # Meta records are skipped: 6 real records remain.
        assert len(scope_logs["logRecords"]) == 6
        bodies = [r["body"]["stringValue"] for r in scope_logs["logRecords"]]
        assert bodies == [
            "task", "seed", "action", "iteration", "resource", "task",
        ]
