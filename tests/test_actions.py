"""Unit tests for actions and exact gain evaluation (Section 4.1).

Figure 6's exact matrix entries are not recoverable from the paper scan,
so the worked example here is a constructed one whose gains are verified
by hand; the *semantics* -- gain equals the reduction of the acted
cluster's residue, additions/removals toggle membership -- are exactly the
paper's.
"""

import numpy as np
import pytest

from repro.core.actions import (
    Action,
    BLOCKED_GAIN,
    evaluate_toggle,
    toggle_occupancy_ok,
)
from repro.core.residue import mean_abs_residue

NAN = float("nan")


class TestActionRecord:
    def test_valid_kinds(self):
        Action(kind="row", index=0, cluster=0, is_removal=False, gain=0.5)
        Action(kind="col", index=3, cluster=1, is_removal=True, gain=-0.2)

    def test_invalid_kind(self):
        with pytest.raises(ValueError, match="row.*col"):
            Action(kind="diag", index=0, cluster=0, is_removal=False, gain=0.0)

    def test_blocked_flag(self):
        blocked = Action("row", 0, 0, False, BLOCKED_GAIN)
        assert blocked.is_blocked
        assert not Action("row", 0, 0, False, -1.0).is_blocked


class TestEvaluateToggle:
    def setup_method(self):
        # 3x4 matrix; cluster = rows {0,1} x cols {0,1}.
        self.values = np.array(
            [
                [1.0, 2.0, 9.0, 4.0],
                [2.0, 4.0, 11.0, 1.0],
                [7.0, 1.0, 3.0, 5.0],
            ]
        )
        self.row_member = np.array([True, True, False])
        self.col_member = np.array([True, True, False, False])

    def current_residue(self):
        return mean_abs_residue(self.values[:2, :2])

    def test_add_column_gain_matches_manual(self):
        new_res, new_vol = evaluate_toggle(
            self.values, self.row_member, self.col_member, "col", 2
        )
        manual = mean_abs_residue(self.values[np.ix_([0, 1], [0, 1, 2])])
        assert new_res == pytest.approx(manual)
        assert new_vol == 6
        gain = self.current_residue() - new_res
        # Column 2 follows the pattern almost exactly: the residue drops.
        assert gain == pytest.approx(
            self.current_residue() - manual
        )

    def test_remove_row_gain(self):
        new_res, new_vol = evaluate_toggle(
            self.values, self.row_member, self.col_member, "row", 1
        )
        # One remaining row: residue identically zero.
        assert new_res == 0.0
        assert new_vol == 2

    def test_add_row(self):
        new_res, new_vol = evaluate_toggle(
            self.values, self.row_member, self.col_member, "row", 2
        )
        manual = mean_abs_residue(self.values[np.ix_([0, 1, 2], [0, 1])])
        assert new_res == pytest.approx(manual)
        assert new_vol == 6

    def test_toggle_to_empty(self):
        row_member = np.array([True, False, False])
        new_res, new_vol = evaluate_toggle(
            self.values, row_member, self.col_member, "row", 0
        )
        assert new_res == 0.0
        assert new_vol == 0

    def test_invalid_kind(self):
        with pytest.raises(ValueError, match="row.*col"):
            evaluate_toggle(
                self.values, self.row_member, self.col_member, "diag", 0
            )

    def test_missing_values_excluded_from_volume(self):
        values = np.array([[1.0, NAN], [3.0, 4.0], [5.0, 6.0]])
        row_member = np.array([True, True, False])
        col_member = np.array([True, True])
        __, new_vol = evaluate_toggle(values, row_member, col_member, "row", 2)
        assert new_vol == 5  # 6 cells, one missing

    def test_gain_identity_random(self):
        # gain == r(before) - r(after) for arbitrary toggles.
        rng = np.random.default_rng(7)
        values = rng.normal(size=(6, 5))
        row_member = rng.random(6) < 0.5
        col_member = rng.random(5) < 0.6
        row_member[:2] = True
        col_member[:2] = True
        before = mean_abs_residue(
            values[np.ix_(np.flatnonzero(row_member), np.flatnonzero(col_member))]
        )
        for kind, index in (("row", 4), ("col", 3)):
            after, __ = evaluate_toggle(values, row_member, col_member, kind, index)
            toggled_rows = row_member.copy()
            toggled_cols = col_member.copy()
            if kind == "row":
                toggled_rows[index] = ~toggled_rows[index]
            else:
                toggled_cols[index] = ~toggled_cols[index]
            manual = mean_abs_residue(
                values[
                    np.ix_(
                        np.flatnonzero(toggled_rows), np.flatnonzero(toggled_cols)
                    )
                ]
            )
            assert after == pytest.approx(manual)


class TestOccupancyCheck:
    def setup_method(self):
        self.values = np.array(
            [
                [1.0, 2.0, NAN],
                [2.0, NAN, NAN],
                [3.0, 4.0, 5.0],
            ]
        )
        self.mask = ~np.isnan(self.values)

    def test_alpha_zero_short_circuits(self):
        assert toggle_occupancy_ok(
            self.mask,
            np.array([True, True, False]),
            np.array([True, True, True]),
            "row",
            2,
            alpha=0.0,
        )

    def test_addition_violating_alpha(self):
        # Adding row 1 (only 1 of 3 specified) against alpha 0.6 fails.
        ok = toggle_occupancy_ok(
            self.mask,
            np.array([True, False, True]),
            np.array([True, True, True]),
            "row",
            1,
            alpha=0.6,
        )
        assert not ok

    def test_addition_satisfying_alpha(self):
        ok = toggle_occupancy_ok(
            self.mask,
            np.array([True, False, False]),
            np.array([True, True, False]),
            "row",
            2,
            alpha=0.6,
        )
        assert ok

    def test_empty_candidate_passes(self):
        ok = toggle_occupancy_ok(
            self.mask,
            np.array([True, False, False]),
            np.array([True, False, False]),
            "row",
            0,
            alpha=0.9,
        )
        assert ok
