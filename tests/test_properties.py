"""Property-based tests (hypothesis) for the core invariants.

These pin down the algebra the whole system rests on: residue invariances,
gain identities, metric ranges, and round-trip laws.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines.pearson import pearson_r
from repro.core.actions import evaluate_toggle
from repro.core.cluster import DeltaCluster
from repro.core.matrix import DataMatrix
from repro.core.residue import (
    compute_bases,
    mean_abs_residue,
    mean_squared_residue,
    residue_matrix,
)
from repro.eval.metrics import jaccard_entries, recall_precision


def finite_matrices(min_side=2, max_side=8):
    side = st.integers(min_side, max_side)
    return side.flatmap(
        lambda n: side.flatmap(
            lambda m: arrays(
                np.float64,
                (n, m),
                elements=st.floats(
                    min_value=-1e6, max_value=1e6,
                    allow_nan=False, allow_infinity=False,
                ),
            )
        )
    )


def matrices_with_missing(min_side=2, max_side=7):
    """Matrices where each entry is either finite or NaN (missing)."""
    side = st.integers(min_side, max_side)
    return side.flatmap(
        lambda n: side.flatmap(
            lambda m: arrays(
                np.float64,
                (n, m),
                elements=st.one_of(
                    st.floats(
                        min_value=-1e6, max_value=1e6,
                        allow_nan=False, allow_infinity=False,
                    ),
                    st.just(float("nan")),
                ),
            )
        )
    )


class TestResidueProperties:
    @given(finite_matrices())
    @settings(max_examples=60, deadline=None)
    def test_residue_non_negative(self, sub):
        assert mean_abs_residue(sub) >= 0.0
        assert mean_squared_residue(sub) >= 0.0

    @given(finite_matrices(), st.floats(-1e5, 1e5, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_global_shift_invariance(self, sub, shift):
        base = mean_abs_residue(sub)
        assert mean_abs_residue(sub + shift) == pytest.approx(
            base, rel=1e-6, abs=1e-6
        )

    @given(finite_matrices())
    @settings(max_examples=60, deadline=None)
    def test_row_and_col_shift_invariance(self, sub):
        rng = np.random.default_rng(0)
        base = mean_abs_residue(sub)
        shifted = (
            sub
            + rng.uniform(-100, 100, size=(sub.shape[0], 1))
            + rng.uniform(-100, 100, size=(1, sub.shape[1]))
        )
        assert mean_abs_residue(shifted) == pytest.approx(
            base, rel=1e-6, abs=1e-5
        )

    @given(finite_matrices())
    @settings(max_examples=60, deadline=None)
    def test_permutation_invariance(self, sub):
        rng = np.random.default_rng(1)
        base = mean_abs_residue(sub)
        permuted = sub[rng.permutation(sub.shape[0])][
            :, rng.permutation(sub.shape[1])
        ]
        assert mean_abs_residue(permuted) == pytest.approx(
            base, rel=1e-9, abs=1e-9
        )

    @given(matrices_with_missing())
    @settings(max_examples=60, deadline=None)
    def test_missing_residues_are_zero(self, sub):
        res = residue_matrix(sub)
        missing = np.isnan(sub)
        assert (res[missing] == 0.0).all()
        assert np.isfinite(res).all()

    @given(matrices_with_missing())
    @settings(max_examples=60, deadline=None)
    def test_bases_finite_and_volume_consistent(self, sub):
        bases = compute_bases(sub)
        assert np.isfinite(bases.row).all()
        assert np.isfinite(bases.col).all()
        assert np.isfinite(bases.grand)
        assert bases.volume == int((~np.isnan(sub)).sum())
        assert bases.volume == bases.row_counts.sum() == bases.col_counts.sum()

    @given(finite_matrices())
    @settings(max_examples=40, deadline=None)
    def test_squared_mean_dominates_squared_abs_mean(self, sub):
        # Jensen: mean(r^2) >= mean(|r|)^2.  The slack must be relative:
        # both sides can reach ~1e10 for large entries, where a fixed
        # 1e-9 epsilon is far below float64 rounding.
        squared = mean_squared_residue(sub)
        bound = mean_abs_residue(sub) ** 2
        assert squared >= bound - 1e-9 - 1e-9 * abs(bound)


class TestToggleProperties:
    @given(matrices_with_missing(min_side=3, max_side=7), st.randoms())
    @settings(max_examples=40, deadline=None)
    def test_toggle_matches_recompute(self, values, pyrandom):
        n, m = values.shape
        rng = np.random.default_rng(pyrandom.randint(0, 2**31))
        row_member = rng.random(n) < 0.5
        col_member = rng.random(m) < 0.5
        kind = "row" if pyrandom.random() < 0.5 else "col"
        index = pyrandom.randrange(n if kind == "row" else m)
        new_res, new_vol = evaluate_toggle(
            values, row_member, col_member, kind, index
        )
        toggled_rows = row_member.copy()
        toggled_cols = col_member.copy()
        if kind == "row":
            toggled_rows[index] = ~toggled_rows[index]
        else:
            toggled_cols[index] = ~toggled_cols[index]
        rows = np.flatnonzero(toggled_rows)
        cols = np.flatnonzero(toggled_cols)
        if rows.size == 0 or cols.size == 0:
            assert new_res == 0.0
            assert new_vol == 0
        else:
            sub = values[np.ix_(rows, cols)]
            assert new_res == pytest.approx(
                mean_abs_residue(sub), rel=1e-9, abs=1e-9
            )
            assert new_vol == int((~np.isnan(sub)).sum())


class TestMetricProperties:
    cluster_strategy = st.builds(
        DeltaCluster,
        st.sets(st.integers(0, 9), min_size=1, max_size=5),
        st.sets(st.integers(0, 9), min_size=1, max_size=5),
    )

    @given(st.lists(cluster_strategy, max_size=4),
           st.lists(cluster_strategy, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_recall_precision_in_unit_range(self, embedded, discovered):
        scores = recall_precision(embedded, discovered, (10, 10))
        assert 0.0 <= scores.recall <= 1.0
        assert 0.0 <= scores.precision <= 1.0
        assert 0.0 <= scores.f1 <= 1.0

    @given(st.lists(cluster_strategy, min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_self_comparison_is_perfect(self, clusters):
        scores = recall_precision(clusters, clusters, (10, 10))
        assert scores.recall == 1.0
        assert scores.precision == 1.0

    @given(cluster_strategy, cluster_strategy)
    @settings(max_examples=60, deadline=None)
    def test_jaccard_symmetric_bounded(self, a, b):
        assert jaccard_entries(a, b) == jaccard_entries(b, a)
        assert 0.0 <= jaccard_entries(a, b) <= 1.0

    @given(st.lists(cluster_strategy, min_size=1, max_size=3),
           st.lists(cluster_strategy, min_size=1, max_size=3))
    @settings(max_examples=40, deadline=None)
    def test_swap_duality(self, embedded, discovered):
        forward = recall_precision(embedded, discovered, (10, 10))
        backward = recall_precision(discovered, embedded, (10, 10))
        assert forward.recall == pytest.approx(backward.precision)
        assert forward.precision == pytest.approx(backward.recall)


class TestPearsonProperties:
    vectors = arrays(
        np.float64, (6,),
        elements=st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False),
    )

    @given(vectors, vectors)
    @settings(max_examples=60, deadline=None)
    def test_bounded(self, a, b):
        r = pearson_r(a, b)
        assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9

    @given(vectors)
    @settings(max_examples=60, deadline=None)
    def test_self_correlation(self, a):
        r = pearson_r(a, a)
        # Either perfectly correlated or degenerate-constant (0).
        assert r == pytest.approx(1.0) or r == 0.0

    @given(vectors, st.floats(-100, 100, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_shift_invariance(self, a, shift):
        assert pearson_r(a, a + shift) == pytest.approx(1.0) or pearson_r(
            a, a + shift
        ) == 0.0


class TestPredictionProperties:
    @given(st.integers(3, 7), st.integers(3, 6), st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_cross_estimator_exact_on_perfect_clusters(self, n, m, seed):
        from repro.core.cluster import DeltaCluster
        from repro.core.predict import predict_entry

        rng = np.random.default_rng(seed)
        rows = rng.uniform(-100, 100, size=n)
        cols = rng.uniform(-100, 100, size=m)
        matrix = DataMatrix(rng.uniform(-10, 10) + rows[:, None] + cols[None, :])
        cluster = DeltaCluster(range(n), range(m))
        i = int(rng.integers(0, n))
        j = int(rng.integers(0, m))
        predicted = predict_entry(matrix, cluster, i, j)
        assert predicted == pytest.approx(
            float(matrix.values[i, j]), rel=1e-9, abs=1e-6
        )

    @given(st.integers(4, 7), st.integers(4, 6), st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_impute_fills_single_hole_exactly(self, n, m, seed):
        from repro.core.cluster import DeltaCluster
        from repro.core.clustering import Clustering
        from repro.core.predict import impute

        rng = np.random.default_rng(seed)
        rows = rng.uniform(-100, 100, size=n)
        cols = rng.uniform(-100, 100, size=m)
        full = rows[:, None] + cols[None, :]
        i = int(rng.integers(0, n))
        j = int(rng.integers(0, m))
        values = full.copy()
        values[i, j] = np.nan
        sparse = DataMatrix(values)
        clustering = Clustering(sparse, [DeltaCluster(range(n), range(m))])
        filled = impute(sparse, clustering)
        assert filled.values[i, j] == pytest.approx(
            full[i, j], rel=1e-9, abs=1e-6
        )


class TestDataMatrixProperties:
    @given(matrices_with_missing())
    @settings(max_examples=40, deadline=None)
    def test_density_consistent(self, values):
        matrix = DataMatrix(values)
        assert matrix.n_specified == int((~np.isnan(values)).sum())
        assert matrix.density == pytest.approx(
            matrix.n_specified / values.size
        )

    @given(matrices_with_missing())
    @settings(max_examples=40, deadline=None)
    def test_equality_reflexive(self, values):
        assert DataMatrix(values) == DataMatrix(values)
