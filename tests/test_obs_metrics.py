"""Metrics registry: instrument semantics and snapshot shape."""

import pytest

from repro.obs import Histogram, MetricsRegistry

pytestmark = pytest.mark.obs


class TestInstruments:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        counter = registry.counter("actions")
        counter.inc()
        registry.inc("actions", 4)
        assert registry.counter("actions") is counter
        assert counter.value == 5

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("residue", 4.0)
        registry.set_gauge("residue", 2.5)
        assert registry.gauge("residue").value == 2.5

    def test_histogram_aggregates_exact(self):
        hist = Histogram("t")
        for value in [1.0, 2.0, 3.0, 10.0]:
            hist.observe(value)
        assert hist.count == 4
        assert hist.total == 16.0
        assert hist.mean == 4.0
        assert hist.min == 1.0
        assert hist.max == 10.0

    def test_histogram_percentiles(self):
        hist = Histogram("t")
        for value in range(101):
            hist.observe(float(value))
        assert hist.percentile(50) == pytest.approx(50.0, abs=2.0)
        assert hist.percentile(90) == pytest.approx(90.0, abs=2.0)
        assert hist.percentile(0) == 0.0
        assert hist.percentile(100) == 100.0

    def test_histogram_decimation_keeps_exact_aggregates(self):
        hist = Histogram("t", sample_cap=64)
        n = 10_000
        for value in range(n):
            hist.observe(float(value))
        assert hist.count == n  # aggregates never decimated
        assert hist.total == sum(range(n))
        assert len(hist._sample) < 64
        # The decimated sample still spans the distribution.
        assert hist.percentile(50) == pytest.approx(n / 2, rel=0.25)


class TestSnapshot:
    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.inc("actions_performed", 3)
        registry.set_gauge("residue_after_iteration", 1.25)
        registry.observe("gain_eval_ns", 1000.0)
        snapshot = registry.snapshot()
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        assert snapshot["counters"] == {"actions_performed": 3}
        assert snapshot["gauges"] == {"residue_after_iteration": 1.25}
        hist = snapshot["histograms"]["gain_eval_ns"]
        assert set(hist) == {
            "count", "total", "mean", "min", "max", "p50", "p90", "p99"
        }
        assert hist["count"] == 1

    def test_snapshot_of_empty_registry(self):
        assert MetricsRegistry().snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }

    def test_reset(self):
        registry = MetricsRegistry()
        registry.inc("n")
        registry.reset()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }
