"""Unit tests for the multi-restart mining front end."""

import pytest

from repro.core.mining import MiningResult, mine_delta_clusters
from repro.data.synthetic import generate_embedded
from repro.eval.metrics import recall_precision


@pytest.fixture(scope="module")
def workload():
    return generate_embedded(
        200, 40, 5, cluster_shape=(20, 14), noise=2.5, rng=3
    )


class TestValidation:
    def test_target_positive(self, workload):
        with pytest.raises(ValueError, match="residue_target"):
            mine_delta_clusters(workload.matrix, residue_target=0.0)

    def test_restarts_positive(self, workload):
        with pytest.raises(ValueError, match="n_restarts"):
            mine_delta_clusters(
                workload.matrix, residue_target=1.0, n_restarts=0
            )

    def test_overlap_range(self, workload):
        with pytest.raises(ValueError, match="max_overlap"):
            mine_delta_clusters(
                workload.matrix, residue_target=1.0, max_overlap=1.5
            )

    def test_accepts_raw_array(self, workload):
        result = mine_delta_clusters(
            workload.matrix.values, residue_target=5.0,
            k=4, n_restarts=1, reseed_rounds=2, rng=0,
        )
        assert isinstance(result, MiningResult)


class TestMining:
    def test_all_returned_clusters_meet_contract(self, workload):
        target = 2 * workload.embedded_average_residue()
        result = mine_delta_clusters(
            workload.matrix, residue_target=target,
            k=6, n_restarts=2, reseed_rounds=6, min_volume=40, rng=1,
        )
        for cluster in result.clustering:
            assert cluster.residue(workload.matrix) <= target
            assert cluster.n_rows >= 3
            assert cluster.n_cols >= 3
            assert cluster.volume(workload.matrix) >= 40

    def test_recovers_planted_structure(self, workload):
        target = 2 * workload.embedded_average_residue()
        result = mine_delta_clusters(
            workload.matrix, residue_target=target,
            k=6, n_restarts=2, reseed_rounds=8, rng=1,
        )
        scores = recall_precision(
            workload.embedded, list(result.clustering), workload.matrix.shape
        )
        assert scores.precision > 0.8
        assert scores.recall > 0.5

    def test_deduplication_drops_overlaps(self, workload):
        target = 2 * workload.embedded_average_residue()
        result = mine_delta_clusters(
            workload.matrix, residue_target=target,
            k=6, n_restarts=3, reseed_rounds=6, max_overlap=0.5, rng=2,
        )
        clusters = list(result.clustering)
        for i, first in enumerate(clusters):
            for second in clusters[i + 1:]:
                assert first.overlap_fraction(second) <= 0.5
        assert result.n_pooled >= len(clusters)
        assert result.n_deduplicated == result.n_pooled - len(clusters)

    def test_max_clusters_cap(self, workload):
        target = 2 * workload.embedded_average_residue()
        result = mine_delta_clusters(
            workload.matrix, residue_target=target,
            k=6, n_restarts=2, reseed_rounds=6, max_clusters=2, rng=3,
        )
        assert len(result.clustering) <= 2

    def test_clusters_sorted_by_volume(self, workload):
        target = 2 * workload.embedded_average_residue()
        result = mine_delta_clusters(
            workload.matrix, residue_target=target,
            k=6, n_restarts=2, reseed_rounds=6, rng=4,
        )
        volumes = [c.volume(workload.matrix) for c in result.clustering]
        assert volumes == sorted(volumes, reverse=True)

    def test_runs_recorded_and_timed(self, workload):
        result = mine_delta_clusters(
            workload.matrix, residue_target=5.0,
            k=4, n_restarts=2, reseed_rounds=2, rng=5,
        )
        assert len(result.runs) == 2
        assert result.elapsed_seconds > 0.0
