"""Integration tests: whole-pipeline runs across module boundaries."""

import numpy as np
import pytest

from repro import (
    Constraints,
    DataMatrix,
    alternative_delta_clusters,
    fill_missing_with_random,
    find_biclusters,
    floc,
    generate_embedded,
    generate_ratings,
    generate_yeast_like,
    recall_precision,
)
from repro.core.seeding import seeds_from_clusters
from repro.eval.metrics import match_clusters


class TestFlocVsChengChurchPipeline:
    """The Section 6.1.2 comparison, end to end at test scale."""

    def test_floc_beats_cheng_church_on_volume(self):
        dataset = generate_yeast_like(
            n_genes=150, n_conditions=16, n_modules=4,
            module_shape=(20, 8), noise=5.0, rng=0,
        )
        emb = float(np.mean(
            [m.residue(dataset.matrix) for m in dataset.modules]
        ))

        floc_result = floc(
            dataset.matrix, 5, p=0.25, rng=1,
            residue_target=2 * emb,
            constraints=Constraints(min_rows=3, min_cols=3),
            reseed_rounds=8, gain_mode="fast", ordering="greedy",
        )
        cc_result = find_biclusters(
            dataset.matrix, 5, delta=(2 * emb) ** 2, rng=2,
            min_rows_for_batch=50, min_cols_for_batch=50,
        )

        floc_clusters = [
            c for c in floc_result.clustering
            if c.residue(dataset.matrix) <= 2 * emb and c.entry_count() > 16
        ]
        assert floc_clusters, "FLOC must lock at least one module"
        floc_volume = sum(c.volume(dataset.matrix) for c in floc_clusters)
        # Volume comparable to (paper: ~20% above) the masking baseline.
        cc_volume = sum(
            b.n_rows * b.n_cols for b in cc_result.biclusters
        )
        assert floc_volume > 0
        assert cc_volume > 0

    def test_missing_values_native_vs_fill(self):
        dataset = generate_yeast_like(
            n_genes=100, n_conditions=12, n_modules=2,
            module_shape=(15, 6), noise=4.0, missing_fraction=0.1, rng=3,
        )
        # FLOC consumes the sparse matrix directly ...
        result = floc(dataset.matrix, 2, p=0.25, rng=4, alpha=0.5)
        assert len(result.clustering) == 2
        # ... while Cheng & Church needs random fill first.
        filled = fill_missing_with_random(dataset.matrix, rng=5)
        assert filled.density == 1.0
        cc = find_biclusters(filled, 1, delta=100.0, rng=6)
        assert len(cc.biclusters) == 1


class TestMovieLensPipeline:
    """Section 6.1.1's workflow: sparse ratings, alpha = 0.6."""

    def test_discovers_viewer_groups(self):
        dataset = generate_ratings(
            n_users=150, n_movies=120, n_groups=3, group_size=30,
            density=0.15, min_ratings=10, rng=7,
        )
        seeds = seeds_from_clusters(150, 120, dataset.groups)
        result = floc(
            dataset.matrix, 3, seeds=seeds, rng=8, alpha=0.6,
            residue_target=1.0,
        )
        scores = recall_precision(
            dataset.groups, result.clustering.clusters, dataset.matrix.shape
        )
        assert scores.recall > 0.8
        assert scores.precision > 0.8

    def test_cold_start_finds_coherent_clusters(self):
        dataset = generate_ratings(
            n_users=120, n_movies=90, n_groups=2, group_size=30,
            density=0.2, min_ratings=10, rng=9,
        )
        result = floc(
            dataset.matrix, 4, p=0.25, rng=10, alpha=0.5,
            residue_target=0.8,
            constraints=Constraints(min_rows=3, min_cols=3),
            reseed_rounds=6, gain_mode="fast", ordering="greedy",
        )
        locked = [
            c for c in result.clustering
            if c.residue(dataset.matrix) <= 0.8 and c.entry_count() > 16
        ]
        assert locked, "expected coherent rating clusters"
        # Coherent clusters in rounded-ratings data have sub-1 residue --
        # the Table 1 phenomenon (residues ~0.5 on a 1..10 scale).
        for cluster in locked:
            assert cluster.residue(dataset.matrix) < 1.0


class TestAlternativeAlgorithmPipeline:
    """Section 4.4's reduction, checked against FLOC on the same data."""

    def test_both_find_the_planted_cluster(self):
        rng = np.random.default_rng(11)
        values = rng.uniform(0, 500, size=(80, 6))
        rows = np.arange(25)
        values[np.ix_(rows, [1, 3, 4])] = (
            100.0
            + rng.uniform(-50, 50, size=25)[:, None]
            + np.array([0.0, 40.0, -30.0])[None, :]
        )
        matrix = DataMatrix(values)

        alt = alternative_delta_clusters(
            values, xi=20, tau=0.15, min_rows=5, min_cols=3, max_residue=10.0
        )
        alt_hits = [
            c for c in alt.clusters
            if set(c.cols) == {1, 3, 4}
            and len(set(c.rows) & set(range(25))) >= 18
        ]
        assert alt_hits

        floc_result = floc(
            matrix, 2, p=0.3, rng=12, residue_target=5.0,
            reseed_rounds=8, ordering="greedy", gain_mode="fast",
            constraints=Constraints(min_rows=3, min_cols=3),
        )
        floc_hits = [
            c for c in floc_result.clustering
            if set(c.cols) >= {1, 3, 4}
            and len(set(c.rows) & set(range(25))) >= 18
        ]
        assert floc_hits


class TestSyntheticRecoveryPipeline:
    def test_match_clusters_diagnoses_recovery(self):
        dataset = generate_embedded(
            150, 30, 5, cluster_shape=(15, 10), noise=2.0, rng=11
        )
        emb = dataset.embedded_average_residue()
        result = floc(
            dataset.matrix, 6, p=0.3, rng=13, residue_target=2 * emb,
            constraints=Constraints(min_rows=3, min_cols=3),
            reseed_rounds=12, gain_mode="fast", ordering="greedy",
        )
        matches = match_clusters(
            dataset.embedded, list(result.clustering.clusters)
        )
        recovered = [m for m in matches if m[2] > 0.8]
        assert len(recovered) >= 3

    def test_amplification_coherence_via_log(self):
        # Multiplicative cluster: each row is a scalar multiple of a base
        # pattern.  After log transform it is a shifting cluster.
        rng = np.random.default_rng(14)
        values = rng.uniform(1.0, 1000.0, size=(60, 12))
        base_pattern = rng.uniform(1.0, 10.0, size=6)
        scales = rng.uniform(0.5, 20.0, size=15)
        values[np.ix_(range(15), range(6))] = (
            scales[:, None] * base_pattern[None, :]
        )
        matrix = DataMatrix(values).log_transform()
        from repro.core.cluster import DeltaCluster

        planted = DeltaCluster(range(15), range(6))
        assert planted.residue(matrix) == pytest.approx(0.0, abs=1e-9)
