"""Property tests for the batched gain engine (``repro.core.gain_engine``).

The engine's whole claim is *equivalence*: the batched exact evaluator,
its block-windowed and scalar forms, and the vectorised gain ladder must
reproduce the per-action oracle path (``exact_candidate`` /
``evaluate_toggle`` / scalar ``_gain``) -- exactly where exactness is
promised (volumes, chosen actions, bitwise-identical lane entries) and
to float tolerance where the oracle recomputes from scratch (residues).
The WorkCounters accounting rules of the batched counters are pinned
here too.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

import repro.core.gain_engine as ge
from repro.core.floc import _State, _gain, floc
from repro.core.gain_engine import GainEngine, ResidueBackend, gain_lane
from repro.core.seeding import bernoulli_seeds
from repro.data.synthetic import generate_embedded
from repro.obs.perf.counters import WorkCounters

# -- strategies --------------------------------------------------------


def matrices_with_missing(min_side=3, max_side=10):
    side = st.integers(min_side, max_side)
    return side.flatmap(
        lambda n: side.flatmap(
            lambda m: arrays(
                np.float64,
                (n, m),
                elements=st.one_of(
                    st.floats(
                        min_value=-1e4, max_value=1e4,
                        allow_nan=False, allow_infinity=False,
                    ),
                    st.just(float("nan")),
                ),
            )
        )
    )


def make_state(values, seed, k, work=None):
    mask = ~np.isnan(values)
    rng = np.random.default_rng(seed)
    seeds = bernoulli_seeds(values.shape[0], values.shape[1], k, 0.4, rng)
    return _State(values, mask, seeds, fast=True, work=work)


# -- exact lane vs the per-action oracle -------------------------------


class TestExactLaneOracle:
    @given(matrices_with_missing(), st.integers(0, 2**32 - 1), st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_lane_matches_exact_candidate(self, values, seed, k):
        """Full-lane residues/volumes == per-action evaluate_toggle rescans."""
        state = make_state(values, seed, k)
        backend = ResidueBackend()
        for kind in ("row", "col"):
            size = values.shape[0] if kind == "row" else values.shape[1]
            for c in range(k):
                lane = backend.exact_lane(state, kind, c)
                for i in range(size):
                    oracle_res, oracle_vol = state.exact_candidate(kind, i, c)
                    assert int(lane.new_volumes[i]) == oracle_vol
                    assert float(lane.new_residues[i]) == pytest.approx(
                        oracle_res, rel=1e-9, abs=1e-9
                    )

    @given(matrices_with_missing(), st.integers(0, 2**32 - 1), st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_chosen_action_matches_oracle_argmax(self, values, seed, k):
        """best_action's winner == argmax of per-action oracle gains."""
        state = make_state(values, seed, k)
        from repro.core.constraints import Constraints

        engine = GainEngine(
            state, Constraints(min_rows=1, min_cols=1),
            alpha=0.0, residue_target=None, gain_mode="exact",
        )
        for kind in ("row", "col"):
            size = values.shape[0] if kind == "row" else values.shape[1]
            for index in range(min(size, 4)):
                picked = engine.best_action(kind, index)
                gains = {}
                for c in range(k):
                    n_c = int(state.row_member[c].sum())
                    m_c = int(state.col_member[c].sum())
                    member = (
                        state.row_member[c] if kind == "row"
                        else state.col_member[c]
                    )
                    if member[index]:  # structural floor on removals
                        if kind == "row" and (n_c - 1 < 1 or m_c < 1):
                            continue
                        if kind == "col" and (n_c < 1 or m_c - 1 < 1):
                            continue
                    res, _ = state.exact_candidate(kind, index, c)
                    gains[c] = _gain(
                        float(state.residues[c]), int(state.volumes[c]),
                        res, 0, residue_target=None,
                    )
                if not gains:
                    assert picked is None
                    continue
                assert picked is not None
                best = max(gains.values())
                # Chosen cluster is a maximiser of the oracle gains (up
                # to float tolerance -- ulp ties may pick either), and
                # the reported gain is that cluster's oracle gain.
                assert picked[0] in gains
                assert gains[picked[0]] == pytest.approx(
                    best, rel=1e-9, abs=1e-9
                )
                assert picked[3] == pytest.approx(
                    gains[picked[0]], rel=1e-9, abs=1e-9
                )


# -- estimate lane vs candidate_parts_batch (bitwise) ------------------


class TestEstimateLane:
    @given(matrices_with_missing(), st.integers(0, 2**32 - 1), st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_estimate_lane_bitwise_equals_batch(self, values, seed, k):
        state = make_state(values, seed, k)
        backend = ResidueBackend()
        for kind in ("row", "col"):
            size = values.shape[0] if kind == "row" else values.shape[1]
            lanes = [backend.estimate_lane(state, kind, c) for c in range(k)]
            for index in range(size):
                new_res, new_vol, line_res, _, _ = state.candidate_parts_batch(
                    kind, index
                )
                for c in range(k):
                    assert lanes[c].new_residues[index] == new_res[c]
                    assert lanes[c].new_volumes[index] == new_vol[c]
                    assert lanes[c].line_residues[index] == line_res[c]


# -- block / scalar forms are bitwise-identical to the full lane -------


class TestBlockAndScalarParity:
    def test_block_sel_and_exact_one_bitwise_equal_full_lane(self):
        backend = ResidueBackend()
        rng = np.random.default_rng(42)
        for _ in range(10):
            N = int(rng.integers(8, 80))
            M = int(rng.integers(4, 30))
            k = int(rng.integers(1, 6))
            values = rng.normal(size=(N, M)) * 3
            values[rng.random((N, M)) < 0.15] = np.nan
            mask = ~np.isnan(values)
            seeds = bernoulli_seeds(N, M, k, 0.3, rng)
            state = _State(values, mask, seeds, fast=True, work=None)
            for kind in ("row", "col"):
                size = N if kind == "row" else M
                for c in range(k):
                    ctx = backend.exact_context(state, kind, c)
                    full = backend.exact_lane(state, kind, c, ctx=ctx)
                    bs = int(rng.integers(1, size + 1))
                    sel = rng.permutation(size)[:bs].astype(np.intp)
                    blk = backend.exact_lane(state, kind, c, sel=sel, ctx=ctx)
                    for name in ("new_residues", "new_volumes", "line_residues"):
                        assert np.array_equal(
                            getattr(full, name)[sel], getattr(blk, name)
                        ), name
                    for i in rng.integers(0, size, size=min(4, size)):
                        i = int(i)
                        nr, nv, lr = backend.exact_one(state, kind, i, c, ctx)
                        assert nr == full.new_residues[i]
                        assert nv == full.new_volumes[i]
                        assert lr == full.line_residues[i]

    def test_ctx_reuse_bitwise_equals_fresh_ctx(self):
        backend = ResidueBackend()
        rng = np.random.default_rng(7)
        values = rng.normal(size=(40, 12))
        values[rng.random((40, 12)) < 0.1] = np.nan
        mask = ~np.isnan(values)
        seeds = bernoulli_seeds(40, 12, 3, 0.3, rng)
        state = _State(values, mask, seeds, fast=True, work=None)
        for kind in ("row", "col"):
            for c in range(3):
                ctx = backend.exact_context(state, kind, c)
                with_ctx = backend.exact_lane(state, kind, c, ctx=ctx)
                without = backend.exact_lane(state, kind, c)
                for name in ("new_residues", "new_volumes", "line_residues"):
                    assert np.array_equal(
                        getattr(with_ctx, name), getattr(without, name)
                    ), name


# -- vectorised gain ladder vs the scalar ------------------------------


class TestGainLane:
    finite = st.floats(0.0, 1e4, allow_nan=False, allow_infinity=False)

    @given(
        finite,
        st.integers(0, 1000),
        st.lists(finite, min_size=1, max_size=8),
        st.lists(st.integers(0, 1000), min_size=8, max_size=8),
        st.one_of(st.none(), st.floats(1e-3, 1e3)),
        st.lists(finite, min_size=8, max_size=8),
        st.lists(st.booleans(), min_size=8, max_size=8),
    )
    @settings(max_examples=200, deadline=None)
    def test_gain_lane_bitwise_equals_scalar_gain(
        self, old_res, old_vol, new_res, new_vol, target, line_res, is_add
    ):
        n = len(new_res)
        new_vol, line_res, is_add = new_vol[:n], line_res[:n], is_add[:n]
        lane = gain_lane(
            old_res, old_vol,
            np.asarray(new_res), np.asarray(new_vol, dtype=np.float64),
            target,
            np.asarray(line_res), np.asarray(is_add),
        )
        for i in range(n):
            scalar = _gain(
                old_res, old_vol, new_res[i], int(new_vol[i]), target,
                line_residue=line_res[i], is_addition=is_add[i],
            )
            assert lane[i] == scalar, (i, lane[i], scalar)


# -- WorkCounters accounting rules -------------------------------------


class TestCounterAccounting:
    def _payload(self, work):
        rng = np.random.default_rng(3)
        values = rng.normal(size=(60, 20))
        values[rng.random((60, 20)) < 0.1] = np.nan
        mask = ~np.isnan(values)
        seeds = bernoulli_seeds(60, 20, 4, 0.3, rng)
        return _State(values, mask, seeds, fast=True, work=work)

    def test_exact_context_counts_one_residue_eval_of_volume_cells(self):
        work = WorkCounters()
        state = self._payload(work)
        backend = ResidueBackend()
        before = work.copy()
        ctx = backend.exact_context(state, "row", 0)
        assert work.residue_evals == before.residue_evals + 1
        assert work.cells_scanned == before.cells_scanned + ctx.volume
        assert work.toggle_evals == before.toggle_evals
        assert work.batch_evals == before.batch_evals

    def test_exact_lane_counts_batch_and_per_slot_toggles(self):
        work = WorkCounters()
        state = self._payload(work)
        backend = ResidueBackend()
        ctx = backend.exact_context(state, "row", 0)
        before = work.copy()
        lane = backend.exact_lane(state, "row", 0, ctx=ctx)
        assert work.batch_evals == before.batch_evals + 1
        assert work.lane_builds == before.lane_builds + 1
        assert work.toggle_evals == before.toggle_evals + 60
        assert work.cells_scanned == (
            before.cells_scanned + int(lane.line_counts.sum())
        )

    def test_block_lane_scans_only_selected_slots(self):
        work = WorkCounters()
        state = self._payload(work)
        backend = ResidueBackend()
        ctx = backend.exact_context(state, "row", 0)
        sel = np.arange(10, dtype=np.intp)
        before = work.copy()
        lane = backend.exact_lane(state, "row", 0, sel=sel, ctx=ctx)
        assert work.batch_evals == before.batch_evals + 1
        assert work.toggle_evals == before.toggle_evals + 10
        assert work.cells_scanned == (
            before.cells_scanned + int(lane.line_counts.sum())
        )
        assert lane.line_counts.size == 10

    def test_exact_one_counts_one_toggle_of_line_count_cells(self):
        work = WorkCounters()
        state = self._payload(work)
        backend = ResidueBackend()
        ctx = backend.exact_context(state, "row", 0)
        full = backend.exact_lane(state, "row", 0, ctx=ctx)
        before = work.copy()
        backend.exact_one(state, "row", 5, 0, ctx)
        assert work.toggle_evals == before.toggle_evals + 1
        assert work.cells_scanned == (
            before.cells_scanned + int(full.line_counts[5])
        )
        assert work.batch_evals == before.batch_evals
        assert work.lane_builds == before.lane_builds


# -- full-run identity: engine caching policies are invisible ----------


def _fingerprint(res):
    return (
        res.n_iterations, res.n_actions, res.converged, res.average_residue,
        tuple((tuple(c.rows), tuple(c.cols)) for c in res.clustering.clusters),
    )


class _EagerEngine(GainEngine):
    """Engine with lazy-scalar consults and block windows disabled."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._lazy_kinds = frozenset()

    def begin_sweep(self, order):
        pass


class TestRunIdentity:
    @pytest.mark.parametrize("gain_mode", ["exact", "fast"])
    def test_lazy_block_engine_bit_identical_to_eager(
        self, gain_mode, monkeypatch
    ):
        dataset = generate_embedded(
            250, 30, 4, cluster_shape=(20, 8), noise=1.0, rng=0
        )
        kwargs = dict(
            gain_mode=gain_mode, residue_target=2.0,
            max_iterations=12, rng=7,
        )
        cached = floc(dataset.matrix, 8, **kwargs)
        monkeypatch.setattr(ge, "GainEngine", _EagerEngine)
        eager = floc(dataset.matrix, 8, **kwargs)
        assert _fingerprint(cached) == _fingerprint(eager)

    def test_invalidate_all_preserves_best_action(self):
        rng = np.random.default_rng(11)
        values = rng.normal(size=(50, 15))
        mask = ~np.isnan(values)
        seeds = bernoulli_seeds(50, 15, 3, 0.3, rng)
        state = _State(values, mask, seeds, fast=True, work=None)
        from repro.core.constraints import Constraints

        engine = GainEngine(
            state, Constraints(min_rows=1, min_cols=1),
            alpha=0.0, residue_target=2.0, gain_mode="exact",
        )
        first = [engine.best_action("row", i) for i in range(50)]
        engine.invalidate_all()
        again = [engine.best_action("row", i) for i in range(50)]
        assert first == again


# -- satellite: empty-action sweeps take no snapshots ------------------


class TestEmptySweepSnapshotSkip:
    def test_zero_action_run_takes_only_the_initial_snapshot(self):
        # Paper-literal mode on a constant matrix: every toggle leaves
        # the residue at 0, every gain is 0, and mandatory_moves=False
        # performs nothing -- the sweep is empty from the start, so the
        # per-iteration bookkeeping must not deep-copy the state at all
        # beyond the initial best-state capture.
        work = WorkCounters()
        values = np.full((30, 10), 5.0)
        result = floc(
            values, 3, gain_mode="exact", residue_target=None,
            max_iterations=10, rng=1, work=work,
        )
        assert result.converged
        assert result.n_actions == 0
        assert work.snapshots == 1
        assert work.restores == 0

    def test_terminal_empty_sweep_adds_no_snapshot(self):
        # A converging r-residue run ends with one empty sweep; only
        # sweeps that performed actions may snapshot/restore.  Initial
        # capture: 1.  Improving sweep: iteration_start + new best = 2
        # snapshots, 1 restore.  Non-improving sweep with actions:
        # 1 snapshot, 1 restore.  The terminal empty sweep: nothing --
        # so snapshots < 1 + 2 * iterations must hold strictly even in
        # the all-improving worst case.
        work = WorkCounters()
        values = np.full((30, 10), 5.0)
        result = floc(
            values, 3, gain_mode="exact", residue_target=2.0,
            max_iterations=10, rng=1, work=work,
        )
        assert result.converged
        assert work.snapshots < 1 + 2 * result.n_iterations
        assert work.restores < result.n_iterations
