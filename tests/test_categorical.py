"""Unit tests for the categorical/hybrid encoding extension."""

import numpy as np
import pytest

from repro.core.cluster import DeltaCluster
from repro.data.categorical import CategoricalEncoding, encode_hybrid

NAN = float("nan")


class TestValidation:
    def test_empty_input(self):
        with pytest.raises(ValueError, match="at least one"):
            encode_hybrid([], categorical=[])

    def test_ragged_columns(self):
        with pytest.raises(ValueError, match="entries"):
            encode_hybrid([[1.0, 2.0], [1.0]], categorical=[])

    def test_categorical_index_range(self):
        with pytest.raises(IndexError, match="out of range"):
            encode_hybrid([[1.0, 2.0]], categorical=[5])

    def test_fully_missing_categorical(self):
        with pytest.raises(ValueError, match="entirely missing"):
            encode_hybrid([["NA", None]], categorical=[0])


class TestEncoding:
    def test_one_hot_columns(self):
        enc = encode_hybrid([["a", "b", "a", "c"]], categorical=[0])
        assert enc.matrix.shape == (4, 3)  # values a, b, c
        assert enc.value_of == ("a", "b", "c")
        assert enc.column_of == (0, 0, 0)
        assert enc.matrix.values[:, 0].tolist() == [1.0, 0.0, 1.0, 0.0]
        assert enc.matrix.values[:, 1].tolist() == [0.0, 1.0, 0.0, 0.0]

    def test_missing_categorical_entry(self):
        enc = encode_hybrid([["a", None, "b"]], categorical=[0])
        assert np.isnan(enc.matrix.values[1]).all()

    def test_numeric_columns_kept_first(self):
        enc = encode_hybrid(
            [[10.0, 20.0], ["x", "y"], [1.0, 3.0]],
            categorical=[1],
        )
        # Numeric columns 0 and 2 first, then indicators for x, y.
        assert enc.column_of == (0, 2, 1, 1)
        assert enc.value_of[:2] == (None, None)

    def test_numeric_scaling(self):
        enc = encode_hybrid([[0.0, 10.0]], categorical=[], scale_numeric=True)
        assert enc.matrix.values[:, 0].tolist() == [0.0, 1.0]

    def test_numeric_scaling_off(self):
        enc = encode_hybrid([[0.0, 10.0]], categorical=[], scale_numeric=False)
        assert enc.matrix.values[:, 0].tolist() == [0.0, 10.0]

    def test_numeric_missing_preserved(self):
        enc = encode_hybrid([[1.0, None, 3.0]], categorical=[])
        assert np.isnan(enc.matrix.values[1, 0])


class TestClusterMapping:
    def test_original_columns(self):
        enc = encode_hybrid(
            [[1.0, 2.0], ["a", "b"]],
            categorical=[1],
        )
        assert enc.original_columns([0]) == [0]
        assert enc.original_columns([1, 2]) == [1]

    def test_describe_cluster(self):
        enc = encode_hybrid(
            [[1.0, 2.0, 3.0], ["a", "a", "b"]],
            categorical=[1],
        )
        cluster = DeltaCluster(rows=(0, 1), cols=(0, 1))  # numeric + 'a'
        described = enc.describe_cluster(cluster)
        assert described[0] == []          # numeric column
        assert described[1] == ["a"]       # rows 0 and 1 both hold 'a'

    def test_describe_skips_values_rows_do_not_hold(self):
        enc = encode_hybrid([["a", "a", "b"]], categorical=[0])
        # Cluster covering BOTH indicator columns but rows holding 'a'.
        cluster = DeltaCluster(rows=(0, 1), cols=(0, 1))
        described = enc.describe_cluster(cluster)
        assert described[0] == ["a"]


class TestCoherenceSemantics:
    def test_agreeing_rows_have_zero_residue_on_indicators(self):
        # Rows choosing the same categories agree on every indicator.
        enc = encode_hybrid(
            [["a", "a", "b", "b"], ["x", "x", "y", "x"]],
            categorical=[0, 1],
        )
        agreeing = DeltaCluster(rows=(0, 1), cols=tuple(range(enc.matrix.n_cols)))
        assert agreeing.residue(enc.matrix) == pytest.approx(0.0)

    def test_disagreeing_rows_have_positive_residue(self):
        enc = encode_hybrid([["a", "b"]], categorical=[0])
        disagreeing = DeltaCluster(rows=(0, 1), cols=(0, 1))
        assert disagreeing.residue(enc.matrix) > 0.0

    def test_floc_finds_categorical_group(self):
        # 40 objects: rows 0-14 share category 'a' AND a numeric pattern.
        rng = np.random.default_rng(0)
        numeric = list(rng.uniform(0, 100, size=40))
        for row in range(15):
            numeric[row] = 50.0 + (row % 3)
        labels = [
            "a" if row < 15 else str(rng.choice(["b", "c", "d"]))
            for row in range(40)
        ]
        second = list(rng.uniform(0, 100, size=40))
        for row in range(15):
            second[row] = 10.0 + (row % 3)
        enc = encode_hybrid(
            [numeric, second, labels], categorical=[2], scale_numeric=True
        )
        from repro import Constraints, floc

        result = floc(
            enc.matrix, k=3, p=0.3, rng=1,
            residue_target=0.1,
            constraints=Constraints(min_rows=3, min_cols=3),
            reseed_rounds=8, gain_mode="fast", ordering="greedy",
        )
        best = max(
            result.clustering,
            key=lambda c: len(set(c.rows) & set(range(15))),
        )
        assert len(set(best.rows) & set(range(15))) >= 10
        described = enc.describe_cluster(best)
        # If the cluster touches the categorical attribute at all, the
        # value its rows hold is 'a'.
        assert described.get(2, []) in ([], ["a"])
