"""Unit tests for CLIQUE's minimal-description phase."""

import numpy as np
import pytest

from repro.subspace.clique import DenseUnit, SubspaceCluster, clique
from repro.subspace.cover import Rectangle, minimal_description, rectangle_covers


def make_cluster(dims, keys):
    units = tuple(
        DenseUnit(key=key, points=frozenset({0})) for key in sorted(keys)
    )
    points = frozenset({0})
    return SubspaceCluster(dims=dims, points=points, units=units)


class TestRectangle:
    def test_contains(self):
        rect = Rectangle(dims=(0, 2), lo=(1, 3), hi=(2, 4))
        assert rect.contains(((0, 1), (2, 3)))
        assert rect.contains(((0, 2), (2, 4)))
        assert not rect.contains(((0, 3), (2, 3)))
        assert not rect.contains(((1, 1), (2, 3)))  # wrong dims

    def test_units_enumeration(self):
        rect = Rectangle(dims=(0,), lo=(2,), hi=(4,))
        assert rect.units() == [((0, 2),), ((0, 3),), ((0, 4),)]
        assert rect.n_units == 3

    def test_validation(self):
        with pytest.raises(ValueError, match="equal length"):
            Rectangle(dims=(0, 1), lo=(0,), hi=(1, 1))
        with pytest.raises(ValueError, match="empty"):
            Rectangle(dims=(0,), lo=(3,), hi=(1,))

    def test_rectangle_covers(self):
        rects = [Rectangle((0,), (0,), (1,)), Rectangle((0,), (3,), (3,))]
        assert rectangle_covers(rects, [((0, 0),), ((0, 1),), ((0, 3),)])
        assert not rectangle_covers(rects, [((0, 2),)])


class TestMinimalDescription:
    def test_single_run_one_rectangle(self):
        keys = [((0, i),) for i in range(4)]
        cluster = make_cluster((0,), keys)
        rects = minimal_description(cluster)
        assert len(rects) == 1
        assert rects[0].lo == (0,)
        assert rects[0].hi == (3,)

    def test_l_shape_needs_two_rectangles(self):
        # Units: a 2x2 block plus a tail -> at least two rectangles.
        keys = [
            ((0, 0), (1, 0)), ((0, 0), (1, 1)),
            ((0, 1), (1, 0)), ((0, 1), (1, 1)),
            ((0, 2), (1, 0)),
        ]
        cluster = make_cluster((0, 1), keys)
        rects = minimal_description(cluster)
        assert 1 < len(rects) <= 3
        assert rectangle_covers(rects, keys)
        # No rectangle strays outside the cluster.
        key_set = set(keys)
        for rect in rects:
            assert all(unit in key_set for unit in rect.units())

    def test_full_block_is_one_rectangle(self):
        keys = [
            ((0, i), (1, j)) for i in range(3) for j in range(2)
        ]
        cluster = make_cluster((0, 1), keys)
        rects = minimal_description(cluster)
        assert len(rects) == 1
        assert rects[0].n_units == 6

    def test_empty_cluster(self):
        cluster = make_cluster((0,), [])
        assert minimal_description(cluster) == []

    def test_cover_is_exact_on_clique_output(self):
        rng = np.random.default_rng(0)
        data = rng.uniform(0, 100, size=(150, 2))
        data[:70, 0] = rng.normal(30.0, 4.0, size=70)
        data[:70, 1] = rng.normal(60.0, 4.0, size=70)
        clusters = clique(data, xi=8, tau=0.05)
        assert clusters
        for cluster in clusters:
            rects = minimal_description(cluster)
            keys = [unit.key for unit in cluster.units]
            assert rectangle_covers(rects, keys)
            key_set = set(keys)
            for rect in rects:
                assert all(unit in key_set for unit in rect.units())

    def test_redundant_rectangles_removed(self):
        # A solid 3-run: greedy from different seeds could emit an
        # interior rectangle; the removal pass must keep it minimal.
        keys = [((0, i),) for i in range(5)]
        cluster = make_cluster((0,), keys)
        rects = minimal_description(cluster)
        assert len(rects) == 1
