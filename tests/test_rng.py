"""Tests for the sanctioned RNG seam (:mod:`repro.core.rng`).

``resolve_rng`` is the only place in the package allowed to construct a
generator from scratch (rule DCL001 enforces that); these tests pin its
normalization contract, which every public ``rng=`` parameter relies on.
"""

import numpy as np

from repro.core.rng import resolve_rng


class TestResolveRng:
    def test_generator_passes_through_identically(self):
        g = np.random.default_rng(5)
        assert resolve_rng(g) is g

    def test_int_seed_is_deterministic(self):
        a = resolve_rng(123).uniform(size=8)
        b = resolve_rng(123).uniform(size=8)
        np.testing.assert_array_equal(a, b)

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(9)
        a = resolve_rng(np.random.SeedSequence(9)).uniform(size=4)
        b = resolve_rng(ss).uniform(size=4)
        np.testing.assert_array_equal(a, b)

    def test_none_gives_fresh_entropy(self):
        # Two entropy-seeded streams almost surely differ; equality here
        # would mean resolve_rng(None) reuses a fixed seed.
        a = resolve_rng(None).uniform(size=16)
        b = resolve_rng(None).uniform(size=16)
        assert not np.array_equal(a, b)

    def test_default_seed_pins_none(self):
        a = resolve_rng(None, default_seed=0).uniform(size=8)
        b = resolve_rng(None, default_seed=0).uniform(size=8)
        np.testing.assert_array_equal(a, b)

    def test_default_seed_does_not_override_explicit(self):
        explicit = resolve_rng(11, default_seed=0).uniform(size=8)
        reference = resolve_rng(11).uniform(size=8)
        np.testing.assert_array_equal(explicit, reference)

    def test_public_reexport(self):
        from repro.core import RngLike, resolve_rng as exported  # noqa: F401

        assert exported is resolve_rng
