"""Session tracing across the supervised runtime (PR 10 tentpole).

Real process pools, real shards: these tests drive ``run_supervised``
with ``session_trace=True`` and check the cross-process contract -- every
worker writes a durable shard, the collector merges them
byte-deterministically, killed workers leave merge-tolerable shards, and
tracing never perturbs the mined result.
"""

import json

import numpy as np
import pytest

from repro.core.matrix import DataMatrix
from repro.obs import RingBufferSink, Tracer
from repro.obs.analysis import analyze_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.session import TRACES_DIRNAME, merge_session, worker_shard_path
from repro.runtime import (
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultSpec,
    RunConfig,
    resume_run,
    run_supervised,
)

pytestmark = pytest.mark.runtime


@pytest.fixture
def matrix():
    rng = np.random.default_rng(21)
    values = rng.normal(size=(16, 8))
    values[:7, :5] += 3.5
    return DataMatrix(values)


def make_config(**overrides):
    base = dict(residue_target=1.5, n_restarts=3, root_seed=5, k=2,
                max_iterations=4, min_volume=9, workers=2, max_retries=2)
    base.update(overrides)
    return RunConfig(**base)


def serialized(result):
    payload = {
        "clustering": [[list(c.rows), list(c.cols)]
                       for c in result.clustering],
        "histories": [run.history for run in result.runs],
        "initial_residues": [run.initial_residue for run in result.runs],
    }
    return json.dumps(payload, sort_keys=True)


@pytest.fixture(autouse=True)
def _no_fault_plan(monkeypatch):
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)


def merged_lines(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestSessionTraceHappyPath:
    def test_shards_and_merged_trace_written(self, matrix, tmp_path):
        out = run_supervised(matrix, make_config(),
                             run_dir=tmp_path / "run", session_trace=True)
        assert out.ok
        traces = out.run_dir / TRACES_DIRNAME
        assert (traces / "trace_supervisor.jsonl").is_file()
        for restart in range(3):
            assert worker_shard_path(out.run_dir, restart, 0).is_file()
        assert out.session_trace is not None and out.session_trace.is_file()

        lines = merged_lines(out.session_trace)
        head = lines[0]
        assert head["type"] == "session_meta"
        assert head["skipped_shards"] == []
        assert head["processes"] == [
            "supervisor",
            "worker:00000:00", "worker:00001:00", "worker:00002:00",
        ]
        types = {line["type"] for line in lines[1:]}
        assert {"task", "seed", "action", "iteration", "resource"} <= types
        # Total session order: aligned timestamps are non-decreasing.
        stamps = [line["ts"] for line in lines[1:]]
        assert stamps == sorted(stamps)

    def test_merge_is_byte_deterministic(self, matrix, tmp_path):
        out = run_supervised(matrix, make_config(),
                             run_dir=tmp_path / "run", session_trace=True)
        again = merge_session(out.run_dir, tmp_path / "again.jsonl")
        assert again.read_bytes() == out.session_trace.read_bytes()

    def test_untraced_run_writes_no_shards(self, matrix, tmp_path):
        out = run_supervised(matrix, make_config(), run_dir=tmp_path / "run")
        assert out.ok
        assert out.session_trace is None
        assert not (out.run_dir / TRACES_DIRNAME).exists()

    def test_traced_result_bit_identical_to_untraced(self, matrix, tmp_path):
        plain = run_supervised(matrix, make_config(),
                               run_dir=tmp_path / "plain")
        traced = run_supervised(matrix, make_config(),
                                run_dir=tmp_path / "traced",
                                session_trace=True)
        assert serialized(traced.result) == serialized(plain.result)

    def test_merged_trace_analyzes_as_multiprocess(self, matrix, tmp_path):
        out = run_supervised(matrix, make_config(),
                             run_dir=tmp_path / "run", session_trace=True)
        analysis = analyze_trace(out.session_trace)
        assert analysis.warnings == []
        assert [t.restart for t in analysis.tasks] == [0, 1, 2]
        assert len(analysis.waves) >= 1
        assert [r.restart for r in analysis.resources] == [0, 1, 2]
        names = [p.name for p in analysis.processes]
        assert "supervisor" in names
        assert "worker:00000:00" in names


class TestTelemetry:
    def test_rusage_lands_in_records_metrics_and_trace(
        self, matrix, tmp_path
    ):
        pytest.importorskip("resource")
        ring = RingBufferSink(4096)
        metrics = MetricsRegistry()
        tracer = Tracer(sinks=[ring], metrics=metrics)
        out = run_supervised(matrix, make_config(),
                             run_dir=tmp_path / "run", tracer=tracer,
                             session_trace=True)
        assert out.ok
        # Durable record carries telemetry (digest-exempt).
        record = json.loads(
            (out.run_dir / "restarts" / "restart-00000.json").read_text())
        telemetry = record["telemetry"]
        assert telemetry["max_rss_kb"] > 0
        assert telemetry["user_cpu_s"] >= 0
        # Surfaced as runtime.task.* metrics on the supervisor side.
        snapshot = metrics.snapshot()
        histograms = set(snapshot["histograms"])
        assert {"runtime.task.max_rss_kb", "runtime.task.user_cpu_s",
                "runtime.task.sys_cpu_s"} <= histograms
        # And as resource events in the merged session trace.
        resources = [line for line in merged_lines(out.session_trace)
                     if line["type"] == "resource"]
        assert sorted(r["restart"] for r in resources) == [0, 1, 2]

    def test_telemetry_does_not_break_resume_verification(
        self, matrix, tmp_path
    ):
        first = run_supervised(matrix, make_config(),
                               run_dir=tmp_path / "run", session_trace=True)
        assert first.ok
        # Every record re-verifies on resume: all restarts skip.
        resumed = resume_run(matrix, tmp_path / "run")
        assert resumed.ok
        assert resumed.executed == []
        assert set(resumed.skipped) == {0, 1, 2}
        assert serialized(resumed.result) == serialized(first.result)


class TestFaultTolerance:
    def test_kill_at_checkpoint_leaves_mergeable_shard(
        self, matrix, tmp_path, monkeypatch
    ):
        plan = FaultPlan((
            FaultSpec(site="checkpoint", kind="kill", restart=1),
        ))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        out = run_supervised(matrix, make_config(),
                             run_dir=tmp_path / "run", session_trace=True,
                             sleep=lambda _s: None)
        assert out.ok  # retry budget absorbs the kill
        # Both the killed attempt's shard and the retry's shard exist;
        # flush_every=1 means the killed shard is still line-valid.
        assert worker_shard_path(out.run_dir, 1, 0).is_file()
        assert worker_shard_path(out.run_dir, 1, 1).is_file()
        head = merged_lines(out.session_trace)[0]
        assert head["skipped_shards"] == []
        processes = head["processes"]
        assert "worker:00001:00" in processes
        assert "worker:00001:01" in processes

    def test_truncated_shard_tail_is_skipped_not_fatal(
        self, matrix, tmp_path, monkeypatch
    ):
        plan = FaultPlan((
            FaultSpec(site="checkpoint", kind="kill", restart=0),
        ))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        out = run_supervised(matrix, make_config(),
                             run_dir=tmp_path / "run", session_trace=True,
                             sleep=lambda _s: None)
        assert out.ok
        # Simulate mid-write death harder: chop the killed shard's last
        # line in half and re-merge -- the collector reports, not fails.
        shard = worker_shard_path(out.run_dir, 0, 0)
        text = shard.read_text()
        shard.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2 - 1])
        merged = merge_session(out.run_dir, tmp_path / "remerged.jsonl")
        head = merged_lines(merged)[0]
        assert head["corrupt_lines"] == {shard.name: [len(text.splitlines())]}
        assert head["skipped_shards"] == []

    def test_faulted_run_trace_is_deterministic_to_remerge(
        self, matrix, tmp_path, monkeypatch
    ):
        plan = FaultPlan((
            FaultSpec(site="worker_start", kind="error", restart=2),
        ))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        out = run_supervised(matrix, make_config(),
                             run_dir=tmp_path / "run", session_trace=True,
                             sleep=lambda _s: None)
        assert out.ok
        again = merge_session(out.run_dir, tmp_path / "again.jsonl")
        assert again.read_bytes() == out.session_trace.read_bytes()
        types = [line["type"] for line in merged_lines(out.session_trace)]
        assert "retry" in types
        assert "fault" in types


class TestResumeGenerations:
    def test_resume_joins_session_with_new_supervisor_shard(
        self, matrix, tmp_path, monkeypatch
    ):
        plan = FaultPlan((
            FaultSpec(site="worker_start", kind="kill", restart=2,
                      attempts=10),
        ))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        crashed = run_supervised(matrix, make_config(max_retries=0),
                                 run_dir=tmp_path / "run",
                                 session_trace=True)
        assert not crashed.ok

        monkeypatch.delenv(FAULT_PLAN_ENV)
        resumed = resume_run(matrix, tmp_path / "run", session_trace=True)
        assert resumed.ok
        traces = tmp_path / "run" / TRACES_DIRNAME
        assert (traces / "trace_supervisor.jsonl").is_file()
        assert (traces / "trace_supervisor_01.jsonl").is_file()
        head = merged_lines(resumed.session_trace)[0]
        assert "supervisor" in head["processes"]
        assert "supervisor:01" in head["processes"]
        # Both generations share the deterministic session id.
        metas = [
            json.loads(path.read_text().splitlines()[0])["session"]
            for path in sorted(traces.glob("trace_supervisor*.jsonl"))
        ]
        assert len(set(metas)) == 1
