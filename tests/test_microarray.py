"""Unit tests for the yeast micro-array data (Figure 4 + generator)."""

import pytest

from repro.data.microarray import (
    FIGURE4_CONDITIONS,
    FIGURE4_GENES,
    FIGURE4_VALUES,
    figure4_cluster,
    figure4_matrix,
    generate_yeast_like,
)


class TestFigure4Constants:
    def test_shape(self):
        assert len(FIGURE4_GENES) == 10
        assert len(FIGURE4_CONDITIONS) == 5
        assert len(FIGURE4_VALUES) == 10
        assert all(len(row) == 5 for row in FIGURE4_VALUES)

    def test_spot_values_from_paper(self):
        matrix = figure4_matrix()
        genes = dict(zip(FIGURE4_GENES, range(10)))
        conditions = dict(zip(FIGURE4_CONDITIONS, range(5)))
        assert matrix.values[genes["CTFC3"], conditions["CH1I"]] == 4392.0
        assert matrix.values[genes["VPS8"], conditions["CH1D"]] == 120.0
        assert matrix.values[genes["NTG1"], conditions["CH2B"]] == 228.0

    def test_labels(self):
        matrix = figure4_matrix()
        assert matrix.row_labels == FIGURE4_GENES
        assert matrix.col_labels == FIGURE4_CONDITIONS


class TestFigure4Cluster:
    def test_members(self):
        cluster = figure4_cluster()
        matrix = figure4_matrix()
        row_names = [matrix.row_labels[i] for i in cluster.rows]
        col_names = [matrix.col_labels[j] for j in cluster.cols]
        assert row_names == ["VPS8", "EFB1", "CYS3"]
        assert col_names == ["CH1I", "CH1D", "CH2B"]

    def test_perfect(self):
        cluster = figure4_cluster()
        assert cluster.residue(figure4_matrix()) == pytest.approx(0.0, abs=1e-9)
        assert cluster.volume(figure4_matrix()) == 9

    def test_vps8_entry_reconstruction(self):
        # Section 3: d_VPS8,CH1I = 273 - 347 ... wait, the paper writes
        # d_iJ + d_Ij - d_IJ = 273 + 347 - 219 = 401.
        assert 273 + 347 - 219 == 401


class TestYeastGenerator:
    def test_default_shape_statistics(self):
        dataset = generate_yeast_like(
            n_genes=300, n_conditions=17, n_modules=5, module_shape=(20, 8), rng=0
        )
        assert dataset.matrix.shape == (300, 17)
        assert dataset.n_genes == 300
        assert dataset.n_conditions == 17
        assert len(dataset.modules) == 5

    def test_value_range_like_scaled_data(self):
        dataset = generate_yeast_like(
            n_genes=200, n_conditions=17, n_modules=3, module_shape=(15, 8), rng=1
        )
        specified = dataset.matrix.values[dataset.matrix.mask]
        assert specified.min() > -300.0
        assert specified.max() < 900.0

    def test_modules_coherent(self):
        dataset = generate_yeast_like(
            n_genes=200, n_conditions=17, n_modules=3,
            module_shape=(15, 8), noise=5.0, rng=2,
        )
        for module in dataset.modules:
            # Mean |residue| of a noisy module ~ noise * 0.8, far below
            # the background (uniform over 0..600 -> residue > 50).
            assert module.residue(dataset.matrix) < 15.0

    def test_missing_fraction(self):
        dataset = generate_yeast_like(
            n_genes=100, n_conditions=10, n_modules=2,
            module_shape=(10, 5), missing_fraction=0.25, rng=3,
        )
        assert dataset.matrix.density == pytest.approx(0.75, abs=0.05)

    def test_deterministic(self):
        a = generate_yeast_like(n_genes=50, n_conditions=8, n_modules=2,
                                module_shape=(8, 4), rng=11)
        b = generate_yeast_like(n_genes=50, n_conditions=8, n_modules=2,
                                module_shape=(8, 4), rng=11)
        assert a.matrix == b.matrix
