"""Trace analytics: aggregates must agree exactly with the source events.

The acceptance contract: per-sweep action counts and gain sums derived by
:func:`repro.obs.analysis.analyze_records` match the ``IterationEvent``
fields and raw ``ActionEvent`` stream exactly, the residue trajectory is
the run's ``history`` verbatim, and the whole analysis is deterministic
(same trace -> byte-identical serialized output).  ``diff_traces`` is
exercised on real twinned exact-vs-fast runs and on synthetic streams
with known divergence.
"""

import json

import numpy as np
import pytest

from repro.core.floc import floc
from repro.core.matrix import DataMatrix
from repro.obs import (
    JsonlSink,
    RingBufferSink,
    Tracer,
    analyze_records,
    analyze_trace,
    diff_traces,
)
from repro.obs.analysis import _histogram

pytestmark = pytest.mark.obs


@pytest.fixture(scope="module")
def matrix():
    rng = np.random.default_rng(0)
    values = rng.uniform(0, 100, size=(40, 12))
    values[:12, :5] = (
        50.0
        + rng.uniform(-15, 15, 12)[:, None]
        + rng.uniform(-15, 15, 5)[None, :]
    )
    return DataMatrix(values)


def traced_run(matrix, *, emit_spans=False, **kwargs):
    sink = RingBufferSink(capacity=100000)
    tracer = Tracer(sinks=[sink], emit_spans=emit_spans)
    kwargs.setdefault("k", 3)
    kwargs.setdefault("rng", 7)
    kwargs.setdefault("reseed_rounds", 2)
    result = floc(matrix, tracer=tracer, **kwargs)
    tracer.close()
    return result, sink.records


@pytest.fixture(scope="module")
def run(matrix):
    return traced_run(matrix)


class TestAgainstRealRuns:
    def test_sweep_counts_match_iteration_events(self, run):
        _, records = run
        analysis = analyze_records(records)
        assert analysis.warnings == []
        sweeps = [s for sess in analysis.sessions for s in sess.sweeps]
        assert sweeps, "run produced no sweeps"
        for sweep in sweeps:
            assert sweep.actions_observed == sweep.n_actions
            assert sweep.admissions + sweep.evictions == sweep.n_actions
            assert sweep.row_actions + sweep.col_actions == sweep.n_actions

    def test_residue_trajectory_matches_history(self, run):
        result, records = run
        analysis = analyze_records(records)
        [session] = analysis.sessions
        assert session.residue_trajectory == result.history

    def test_gain_sums_match_action_stream(self, run):
        _, records = run
        analysis = analyze_records(records)
        raw_gain = sum(
            r["gain"] for r in records if r.get("type") == "action"
        )
        sweep_gain = sum(
            s.gain_sum for sess in analysis.sessions for s in sess.sweeps
        )
        slot_gain = sum(slot.gain_sum for slot in analysis.slots)
        cluster_gain = sum(c.gain_sum for c in analysis.clusters)
        assert sweep_gain == pytest.approx(raw_gain, abs=1e-12)
        assert slot_gain == pytest.approx(raw_gain, abs=1e-12)
        assert cluster_gain == pytest.approx(raw_gain, abs=1e-12)

    def test_event_counts_match_raw_stream(self, run):
        _, records = run
        analysis = analyze_records(records)
        assert analysis.n_records == len(records)
        for kind in ("seed", "action", "iteration"):
            expected = sum(1 for r in records if r.get("type") == kind)
            assert analysis.event_counts.get(kind, 0) == expected
        assert analysis.n_actions == analysis.event_counts.get("action", 0)

    def test_slot_histograms_account_for_every_action(self, run):
        _, records = run
        analysis = analyze_records(records)
        for slot in analysis.slots:
            assert slot.histogram is not None
            assert sum(slot.histogram.counts) == slot.actions
            assert slot.gain_min <= slot.gain_mean <= slot.gain_max
        # Shared edges: every slot histogram spans the same range.
        edges = {tuple(s.histogram.edges[:1] + s.histogram.edges[-1:])
                 for s in analysis.slots}
        assert len(edges) == 1

    def test_cluster_seed_counts(self, run):
        _, records = run
        analysis = analyze_records(records)
        seeds = sum(c.seeds for c in analysis.clusters)
        reseeds = sum(c.reseeds for c in analysis.clusters)
        raw = [r for r in records if r.get("type") == "seed"]
        assert seeds == sum(1 for r in raw if r.get("origin") == "phase1")
        assert reseeds == sum(1 for r in raw if r.get("origin") == "reseed")

    def test_spans_aggregate_when_emitted(self, matrix):
        _, records = traced_run(matrix, emit_spans=True)
        analysis = analyze_records(records)
        assert "phase1" in analysis.spans
        assert "gain_eval" in analysis.spans
        for agg in analysis.spans.values():
            assert agg["count"] >= 1
            assert agg["total_s"] >= 0.0
        # Per-sweep wall-time breakdown picked up the span stream.
        sweeps = [s for sess in analysis.sessions for s in sess.sweeps]
        assert any(s.span_s for s in sweeps)

    def test_no_spans_without_emit_spans(self, run):
        _, records = run
        analysis = analyze_records(records)
        assert analysis.spans == {}


class TestDeterminism:
    def test_to_dict_is_reproducible(self, run):
        _, records = run
        first = json.dumps(
            analyze_records(records).to_dict(), sort_keys=True
        )
        second = json.dumps(
            analyze_records(list(records)).to_dict(), sort_keys=True
        )
        assert first == second

    def test_analyze_trace_round_trip(self, run, tmp_path):
        _, records = run
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        for record in records:
            sink.write(record)
        sink.close()
        from_file = analyze_trace(path)
        in_memory = analyze_records(records)
        assert from_file.to_dict() == in_memory.to_dict()

    def test_truncated_trace_still_analyzes(self, run, tmp_path):
        _, records = run
        path = tmp_path / "cut.jsonl"
        sink = JsonlSink(path)
        for record in records:
            sink.write(record)
        sink.close()
        text = path.read_text()
        path.write_text(text[: len(text) - 20])  # chop mid-final-line
        analysis = analyze_trace(path)
        assert analysis.n_records == len(records) - 1
        with pytest.raises(ValueError):
            analyze_trace(path, strict=True)


class TestHandBuiltStreams:
    @staticmethod
    def iteration(index, residue, n_actions=0, **extra):
        return {
            "type": "iteration", "index": index, "residue": residue,
            "score": residue, "total_volume": 10, "n_actions": n_actions,
            "improved": True, "elapsed_s": 0.0, **extra,
        }

    @staticmethod
    def action(cluster=0, kind="row", gain=1.0, is_removal=False, **extra):
        return {
            "type": "action", "kind": kind, "index": 0, "cluster": cluster,
            "is_removal": is_removal, "gain": gain, "residue": 1.0,
            "volume": 9, **extra,
        }

    def test_count_mismatch_warns(self):
        records = [self.action(), self.iteration(0, 1.0, n_actions=3)]
        analysis = analyze_records(records)
        assert len(analysis.warnings) == 1
        assert "n_actions=3" in analysis.warnings[0]

    def test_dangling_actions_warn(self):
        records = [
            self.action(), self.iteration(0, 1.0, n_actions=1),
            self.action(), self.action(),
        ]
        analysis = analyze_records(records)
        [session] = analysis.sessions
        assert session.dangling_actions == 2
        assert any("after the last iteration" in w for w in analysis.warnings)

    def test_sessions_separated_by_context(self):
        records = [
            self.action(restart=0),
            self.iteration(0, 2.0, n_actions=1, restart=0),
            self.action(restart=1),
            self.iteration(0, 3.0, n_actions=1, restart=1),
        ]
        analysis = analyze_records(records)
        assert len(analysis.sessions) == 2
        assert [s.key for s in analysis.sessions] == [
            {"restart": 0}, {"restart": 1},
        ]
        assert [s.residue_trajectory for s in analysis.sessions] == [
            [2.0], [3.0],
        ]

    def test_unknown_event_types_counted_not_fatal(self):
        records = [{"type": "future_thing", "x": 1}]
        analysis = analyze_records(records)
        assert analysis.event_counts == {"future_thing": 1}
        assert analysis.warnings == []

    def test_record_without_type_warns(self):
        analysis = analyze_records([{"x": 1}])
        assert len(analysis.warnings) == 1

    def test_churn_property(self):
        records = [
            self.action(is_removal=False),
            self.action(is_removal=True),
            self.iteration(0, 1.0, n_actions=2),
        ]
        [session] = analyze_records(records).sessions
        [sweep] = session.sweeps
        assert sweep.admissions == 1
        assert sweep.evictions == 1
        assert sweep.churn == 2

    def test_histogram_degenerate_range(self):
        hist = _histogram([2.0, 2.0, 2.0], 2.0, 2.0)
        assert hist.counts == [3]
        assert len(hist.edges) == len(hist.counts) + 1

    def test_histogram_binning(self):
        hist = _histogram([0.0, 0.5, 1.0], 0.0, 1.0)
        assert sum(hist.counts) == 3
        assert hist.counts[0] == 1   # 0.0 in the first bucket
        assert hist.counts[-1] == 1  # hi lands in the last bucket


class TestDiffTraces:
    def test_twinned_exact_vs_fast_runs(self, matrix):
        _, exact = traced_run(matrix, gain_mode="exact")
        _, fast = traced_run(matrix, gain_mode="fast")
        diff = diff_traces(exact, fast)
        assert diff.deltas, "no aligned iterations"
        # Same seed, same workload: iteration 0 starts from the same
        # Phase-1 state, so per-iteration deltas measure gain-mode
        # divergence only.
        for delta in diff.deltas:
            assert delta.residue_delta == delta.residue_b - delta.residue_a
        summary = diff.to_dict(tol=0.0)
        assert summary["n_aligned"] == len(diff.deltas)
        assert summary["max_abs_residue_delta"] >= summary[
            "mean_abs_residue_delta"
        ]

    def test_identical_traces_do_not_diverge(self, run):
        _, records = run
        diff = diff_traces(records, records)
        assert diff.n_only_a == diff.n_only_b == 0
        assert diff.max_abs_residue_delta == 0.0
        assert diff.first_divergence() is None

    def test_synthetic_divergence_located(self):
        make = TestHandBuiltStreams.iteration
        a = [make(0, 5.0), make(1, 4.0), make(2, 3.0)]
        b = [make(0, 5.0), make(1, 4.5), make(2, 2.0)]
        diff = diff_traces(a, b)
        assert [d.residue_delta for d in diff.deltas] == [0.0, 0.5, -1.0]
        first = diff.first_divergence(tol=0.25)
        assert first is not None and first.index == 1
        assert diff.first_divergence(tol=2.0) is None
        assert diff.final_residue_delta == -1.0
        assert diff.max_abs_residue_delta == 1.0
        assert diff.mean_abs_residue_delta == pytest.approx(0.5)

    def test_unpaired_iterations_counted(self):
        make = TestHandBuiltStreams.iteration
        a = [make(0, 5.0), make(1, 4.0)]
        b = [make(0, 5.0)]
        diff = diff_traces(a, b)
        assert len(diff.deltas) == 1
        assert diff.n_only_a == 1
        assert diff.n_only_b == 0

    def test_sessions_aligned_independently(self):
        make = TestHandBuiltStreams.iteration
        a = [make(0, 5.0, restart=0), make(0, 7.0, restart=1)]
        b = [make(0, 6.0, restart=0), make(0, 7.0, restart=1)]
        diff = diff_traces(a, b)
        assert len(diff.deltas) == 2
        assert [d.key for d in diff.deltas] == [
            {"restart": 0}, {"restart": 1},
        ]
        assert [d.residue_delta for d in diff.deltas] == [1.0, 0.0]

    def test_to_dict_deterministic(self):
        make = TestHandBuiltStreams.iteration
        a = [make(0, 5.0), make(1, 4.0)]
        b = [make(0, 5.5), make(1, 4.0)]
        first = json.dumps(diff_traces(a, b).to_dict(), sort_keys=True)
        second = json.dumps(diff_traces(a, b).to_dict(), sort_keys=True)
        assert first == second


class TestRuntimeTraces:
    """Supervised-runtime traces (task/retry/fault events) analyze
    cleanly: the event kinds are known to the analyzer, their counts
    match the raw stream, and ``repro analyze-trace`` accepts the file.
    """

    @pytest.fixture
    def runtime_trace(self, tmp_path, monkeypatch):
        from repro.runtime import (
            FAULT_PLAN_ENV,
            FaultPlan,
            FaultSpec,
            RunConfig,
            run_supervised,
        )

        rng = np.random.default_rng(3)
        values = rng.normal(size=(16, 8))
        values[:7, :5] += 3.5
        matrix = DataMatrix(values)
        config = RunConfig(
            residue_target=1.5, n_restarts=3, root_seed=5, k=2,
            max_iterations=4, min_volume=9, workers=1, max_retries=1,
        )
        # One recoverable fault so the trace carries a retry and a
        # fault event alongside the task lifecycle.
        plan = FaultPlan((
            FaultSpec(site="worker_start", kind="error", restart=0),
        ))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        path = tmp_path / "runtime-trace.jsonl"
        sink = JsonlSink(path)
        tracer = Tracer(sinks=[sink])
        outcome = run_supervised(
            matrix, config, run_dir=tmp_path / "run",
            tracer=tracer, sleep=lambda _s: None,
        )
        tracer.close()
        assert outcome.ok
        return path

    def test_runtime_events_are_known_and_counted(self, runtime_trace):
        analysis = analyze_trace(runtime_trace)
        assert analysis.warnings == []
        # Task lifecycle: every restart dispatches and completes, the
        # faulted restart adds a failed attempt.
        assert analysis.event_counts.get("task", 0) >= 2 * 3 + 1
        assert analysis.event_counts.get("retry", 0) == 1
        assert analysis.event_counts.get("fault", 0) == 1

    def test_counts_match_raw_stream(self, runtime_trace):
        from repro.obs.sinks import read_jsonl

        records = list(read_jsonl(runtime_trace))
        analysis = analyze_trace(runtime_trace)
        assert analysis.n_records == len(records)
        for kind in ("task", "retry", "fault"):
            expected = sum(1 for r in records if r.get("type") == kind)
            assert analysis.event_counts.get(kind, 0) == expected
        statuses = [
            r["status"] for r in records if r.get("type") == "task"
        ]
        assert statuses.count("dispatched") == statuses.count(
            "completed"
        ) + statuses.count("failed")

    def test_cli_analyze_trace_accepts_runtime_trace(
            self, runtime_trace, capsys):
        from repro.cli import main

        assert main(["analyze-trace", str(runtime_trace), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["warnings"] == []
        assert payload["event_counts"]["task"] >= 2 * 3 + 1
        assert payload["event_counts"]["retry"] == 1
        assert payload["event_counts"]["fault"] == 1

    def test_analysis_of_runtime_trace_is_deterministic(
            self, runtime_trace):
        first = json.dumps(
            analyze_trace(runtime_trace).to_dict(), sort_keys=True
        )
        second = json.dumps(
            analyze_trace(runtime_trace).to_dict(), sort_keys=True
        )
        assert first == second


class TestWaveTimeline:
    """Multi-process aggregation: waves, stragglers, resources, processes."""

    def _task(self, restart, status, wave, elapsed, attempt=0, **extra):
        return {"type": "task", "restart": restart, "attempt": attempt,
                "status": status, "wave": wave, "elapsed_s": elapsed,
                **extra}

    def test_wave_stats_and_straggler_flag(self):
        records = [
            self._task(0, "completed", 0, 1.0),
            self._task(1, "completed", 0, 1.2),
            self._task(2, "completed", 0, 5.0),  # > 2x median of wave 0
            self._task(3, "completed", 1, 2.0),
            self._task(4, "failed", 1, 0.5, error="Boom"),
            {"type": "retry", "restart": 4, "wave": 1},
            {"type": "fault", "restart": 4, "wave": 1, "site": "worker_start",
             "kind": "error"},
        ]
        analysis = analyze_records(records)
        assert [w.index for w in analysis.waves] == [0, 1]
        wave0, wave1 = analysis.waves
        assert (wave0.completed, wave0.failed) == (3, 0)
        assert wave0.median_elapsed_s == pytest.approx(1.2)
        assert wave0.max_elapsed_s == pytest.approx(5.0)
        assert wave0.stragglers == 1
        assert (wave1.completed, wave1.failed) == (1, 1)
        assert (wave1.retries, wave1.faults) == (1, 1)
        assert wave1.stragglers == 0  # single completion: no baseline
        stragglers = analysis.stragglers
        assert [t.restart for t in stragglers] == [2]
        assert stragglers[0].is_straggler
        failed = [t for t in analysis.tasks if t.status == "failed"]
        assert failed[0].error == "Boom"

    def test_straggler_factor_configurable(self):
        records = [
            self._task(0, "completed", 0, 1.0),
            self._task(1, "completed", 0, 1.5),
            self._task(2, "completed", 0, 2.0),
        ]
        relaxed = analyze_records(records)  # default factor 2.0: 2.0 < 3.0
        assert relaxed.stragglers == []
        strict = analyze_records(records, straggler_factor=1.1)
        assert [t.restart for t in strict.stragglers] == [2]

    def test_dispatched_and_skipped_tasks_not_timeline_entries(self):
        records = [
            self._task(0, "dispatched", 0, 0.0),
            self._task(0, "completed", 0, 1.0),
            self._task(1, "skipped", 0, 0.0),
        ]
        analysis = analyze_records(records)
        assert [t.status for t in analysis.tasks] == ["completed"]

    def test_resources_collected_and_sorted(self):
        records = [
            {"type": "resource", "restart": 1, "attempt": 0,
             "max_rss_kb": 2000.0, "user_cpu_s": 0.5, "sys_cpu_s": 0.1},
            {"type": "resource", "restart": 0, "attempt": 1,
             "max_rss_kb": 1000.0, "user_cpu_s": 0.2, "sys_cpu_s": 0.05},
        ]
        analysis = analyze_records(records)
        assert [(r.restart, r.attempt) for r in analysis.resources] == [
            (0, 1), (1, 0),
        ]
        assert analysis.resources[0].max_rss_kb == 1000.0

    def test_per_process_stats_from_merged_trace(self):
        records = [
            {"type": "session_meta", "schema": 1, "session": "s",
             "processes": ["supervisor", "worker:00000:00"]},
            {"type": "task", "process": "supervisor", "status": "completed",
             "restart": 0, "wave": 0, "elapsed_s": 1.0},
            {"type": "seed", "process": "worker:00000:00", "cluster": 0},
            {"type": "span", "process": "worker:00000:00",
             "name": "phase1_seeding", "elapsed_s": 0.25},
        ]
        analysis = analyze_records(records)
        assert [p.name for p in analysis.processes] == [
            "supervisor", "worker:00000:00",
        ]
        supervisor, worker = analysis.processes
        assert supervisor.n_records == 1
        assert supervisor.event_counts == {"task": 1}
        assert worker.n_records == 2
        assert worker.span_s == {"phase1_seeding": 0.25}
        assert analysis.warnings == []

    def test_to_dict_exposes_timeline_sections(self):
        records = [
            self._task(0, "completed", 0, 1.0),
            self._task(1, "completed", 0, 1.0),
            self._task(2, "completed", 0, 5.0),
        ]
        payload = analyze_records(records).to_dict()
        assert payload["schema"] == 1
        assert [w["index"] for w in payload["waves"]] == [0]
        assert [t["restart"] for t in payload["stragglers"]] == [2]
        assert payload["tasks"][0]["status"] == "completed"
        assert payload["resources"] == []
        assert payload["processes"] == []

    def test_plain_single_process_trace_has_empty_timeline(self):
        records = [
            {"type": "seed", "cluster": 0},
            {"type": "iteration", "index": 0, "residue": 1.0,
             "total_volume": 10, "n_actions": 0, "improved": True,
             "elapsed_s": 0.1},
        ]
        analysis = analyze_records(records)
        assert analysis.tasks == []
        assert analysis.waves == []
        assert analysis.resources == []
